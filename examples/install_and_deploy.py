"""The full installation -> artefacts -> deployment lifecycle.

Walks the paper's Fig. 2 / Fig. 3 pipeline explicitly, stage by stage:

1. quasi-random domain sampling and the timing campaign (Fig. 2 left);
2. preprocessing + hyper-parameter tuning + model bake-off (Fig. 2
   right), printing the Tables III/IV-style report;
3. saving the two artefacts (config JSON + model pickle);
4. a separate "user program" loading them and running GEMMs (Fig. 3).

Run with::

    python examples/install_and_deploy.py
"""

import tempfile

from repro.bench.report import format_table
from repro.core.library import AdsalaGemm
from repro.core.serialize import load_bundle, save_bundle
from repro.core.training import InstallationWorkflow
from repro.gemm.interface import GemmSpec
from repro.machine.presets import by_name
from repro.machine.simulator import MachineSimulator

MB = 1024 * 1024


def install(machine: str, directory: str):
    """Installation side: benchmark, train, select, persist."""
    simulator = MachineSimulator(by_name(machine), seed=0)
    workflow = InstallationWorkflow(
        simulator,
        memory_cap_bytes=100 * MB,
        n_shapes=150,
        thread_grid=[1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96],
        label_transform="log",
        tune_iters=2,
        cv_folds=2,
        seed=0,
    )

    print("[install] gathering timing data (quasi-random campaign)...")
    data = workflow.gather()
    print(f"[install]   {len(data)} timing records "
          f"({workflow.n_shapes} shapes x {len(workflow.thread_grid)} thread counts)")
    print(f"[install]   campaign cost: {simulator.clock.node_hours:.4f} node hours")

    print("[install] preprocessing, tuning and selecting models...")
    bundle = workflow.run(data)

    print(format_table(bundle.report.as_table(),
                       title="[install] model bake-off (Tables III/IV format)"))
    print(f"[install] selected: {bundle.report.selected}")

    save_bundle(bundle, directory)
    print(f"[install] artefacts written to {directory}/")
    return simulator


def deploy(directory: str, simulator):
    """User-program side: load artefacts, call GEMM inside a loop."""
    print("\n[deploy] loading installation artefacts...")
    bundle = load_bundle(directory)
    print(f"[deploy]   machine={bundle.config.machine} "
          f"model={bundle.config.model_name}")

    workload = [GemmSpec(64, 2048, 64), GemmSpec(512, 512, 512),
                GemmSpec(2000, 100, 2000), GemmSpec(3000, 3000, 3000)]
    with AdsalaGemm(bundle, simulator) as gemm:
        print(f"[deploy] {'shape':>20} {'threads':>8} {'time':>10} {'baseline':>10} {'speedup':>8}")
        for spec in workload:
            record = gemm.run(spec)
            baseline = gemm.run_baseline(spec)
            print(f"[deploy] {str(spec.dims):>20} {record.n_threads:8d} "
                  f"{record.runtime * 1e3:9.3f}ms {baseline * 1e3:9.3f}ms "
                  f"{baseline / record.runtime:7.2f}x")
    print("[deploy] instance closed; model memory released.")


def main():
    with tempfile.TemporaryDirectory() as directory:
        simulator = install("gadi", directory)
        deploy(directory, simulator)


if __name__ == "__main__":
    main()
