"""Concurrent clients hitting one multi-tenant GemmServer.

Two simulated platforms (the paper's Gadi and Setonix nodes) are
installed and mounted as *shards* of a single
:class:`~repro.serve.server.GemmServer`.  Four concurrent clients then
hammer the server with a Poisson request stream: deep-learning
inference shapes routed to the Gadi shard and quantum-chemistry-style
contractions routed to Setonix via a
:class:`~repro.serve.router.TenantRouter`.

The server forms dynamic micro-batches (dispatch when ``max_batch``
requests are waiting or ``max_wait_ms`` after the first), so all the
concurrent callers share vectorised model passes, while admission
control keeps the queue bounded.  The printed report shows the
batch-size distribution, p50/p95/p99 latency and per-shard cache
effectiveness.

Run with::

    python examples/serve_trace.py
"""

from repro import GemmService, GemmSpec, quick_install
from repro.bench.report import (batch_size_table, cache_effectiveness_table,
                                format_table, latency_table)
from repro.serve import GemmServer, TenantRouter, poisson_trace, replay_trace
from repro.serve.trace import TimedRequest

#: Convolution-lowered GEMMs of a ResNet-ish forward pass (inference
#: tenants) and irregular contraction tiles (chemistry tenants).
INFERENCE_SHAPES = [(64, 147, 12544), (64, 576, 3136), (128, 1152, 784),
                    (256, 2304, 196), (512, 4608, 49), (1000, 512, 1)]
CHEMISTRY_SHAPES = [(18, 512, 64), (60, 512, 64), (150, 512, 64),
                    (64, 512, 512), (512, 512, 64)]


def build_server() -> GemmServer:
    """Install both platforms and front them with one server."""
    print("installing on gadi (inference tenant shard)...")
    gadi_bundle, gadi_sim = quick_install("gadi", n_shapes=100,
                                          tune_iters=2, cv_folds=2)
    print("installing on setonix (chemistry tenant shard)...")
    setonix_bundle, setonix_sim = quick_install("setonix", n_shapes=100,
                                                tune_iters=2, cv_folds=2)
    shards = {
        "gadi": GemmService.from_bundle(gadi_bundle, gadi_sim),
        "setonix": GemmService.from_bundle(setonix_bundle, setonix_sim),
    }
    router = TenantRouter({"inference-0": "gadi", "inference-1": "gadi",
                           "chemistry-0": "setonix",
                           "chemistry-1": "setonix"})
    return GemmServer(shards, router, max_batch=16, max_wait_ms=3.0,
                      max_queue=128)


def build_trace(n_requests: int = 240, rate_hz: float = 1200.0) -> list:
    """Interleave both tenant workloads into one Poisson arrival stream.

    Each request's tenant follows its workload family (inference shapes
    belong to the inference tenants, contraction tiles to the chemistry
    tenants), alternating between the two clients of each family.
    """
    inference = {(m, k, n) for m, k, n in INFERENCE_SHAPES}
    pool = [GemmSpec(m, k, n)
            for m, k, n in INFERENCE_SHAPES + CHEMISTRY_SHAPES]
    base = poisson_trace(pool, rate_hz=rate_hz, n_requests=n_requests,
                         seed=7)
    trace, counts = [], {"inference": 0, "chemistry": 0}
    for item in base:
        family = "inference" if item.spec.dims in inference else "chemistry"
        client = f"{family}-{counts[family] % 2}"
        counts[family] += 1
        trace.append(TimedRequest(spec=item.spec, at=item.at, client=client))
    return trace


def main() -> None:
    server = build_server()
    trace = build_trace()
    print(f"\nreplaying {len(trace)} requests from 4 concurrent tenants...")
    outcome = replay_trace(server, trace)

    stats = outcome.stats
    print()
    print(format_table([outcome.report_row("multi-tenant")],
                       title="serve replay"))
    print()
    print(latency_table({"latency": server.telemetry.latency(),
                         "queue wait": server.telemetry.wait()},
                        title="request latency (ms)"))
    print()
    print(batch_size_table(stats["batch_size_histogram"]))
    for shard in sorted(server.shards):
        print()
        print(cache_effectiveness_table(stats["shards"][shard],
                                        title=f"shard {shard}"))
    print(f"\nmodel passes: {stats['model_passes']} for {stats['served']} "
          f"served requests across {len(server.shards)} shards")


if __name__ == "__main__":
    main()
