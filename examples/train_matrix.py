"""Training matrix -> model registry -> zero-downtime hot-reload.

The full production loop of the offline path:

1. train a (routine x machine) matrix through the staged pipeline,
   publishing one versioned bundle per cell into a model registry;
2. bring up a ``GemmServer`` serving each machine's ``latest`` GEMM
   bundle as its own shard;
3. retrain one cell (a "model refresh") and hot-reload the new version
   into its shard while requests are in flight — nothing is dropped,
   and the reload boundary is visible in the shard's bundle generation.

Run with::

    PYTHONPATH=src python examples/train_matrix.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.engine.service import GemmService
from repro.gemm.interface import GemmSpec
from repro.machine.presets import by_name
from repro.machine.simulator import MachineSimulator
from repro.serve.server import GemmServer
from repro.train.matrix import TrainingMatrix, build_workflow
from repro.train.registry import ModelRegistry

MB = 1024 * 1024

MACHINES = ["tiny", "gadi"]
SETTINGS = dict(n_shapes=40, memory_cap_bytes=16 * MB,
                tune_iters=2, cv_folds=2, repeats=2)


def train_registry(root: str) -> ModelRegistry:
    """Step 1: one bundle per (routine, machine) cell."""
    registry = ModelRegistry(root)
    matrix = TrainingMatrix(["gemm", "gemv"], MACHINES, registry,
                            cache=root + "/.stage_cache", n_jobs=2,
                            **SETTINGS)
    print(f"training {len(matrix.cells())} matrix cells...")
    matrix.run(progress=lambda msg: print(f"  {msg}"))
    return registry


async def serve_and_reload(registry: ModelRegistry) -> None:
    """Steps 2-3: serve ``latest`` per machine, refresh one cell live."""
    shards = {
        name: GemmService.from_bundle(registry.load("gemm", name),
                                      MachineSimulator(by_name(name),
                                                       seed=0))
        for name in MACHINES
    }
    async with GemmServer(shards, max_batch=8, max_wait_ms=1.0) as server:
        specs = [GemmSpec(64 * i, 1024, 64) for i in range(1, 25)]
        first = await asyncio.gather(
            *(server.submit(s, shard="tiny") for s in specs))
        print(f"served {len(first)} requests on tiny's v1 bundle")

        # A model refresh: retrain the tiny cell (different seed stands
        # in for "new measurements"), publish v2, hot-swap mid-traffic.
        workflow = build_workflow("gemm", "tiny", seed=1, n_jobs=2,
                                  **SETTINGS)
        record = registry.publish(workflow.run(), routine="gemm",
                                  machine="tiny")
        print(f"published {record.ref} (checksum {record.checksum[:12]})")

        in_flight = asyncio.gather(
            *(server.submit(s, shard="tiny") for s in specs))
        info = await server.reload(registry.load("gemm", "tiny"),
                                   shard="tiny")
        await in_flight
        after = await server.submit(specs[0], shard="tiny")
        stats = server.stats()
        print(f"hot-reloaded tiny -> generation "
              f"{info['tiny']['generation']}; served {stats['served']}, "
              f"rejected {stats['rejected']}, failed {stats['failed']}")
        print(f"post-reload choice for {specs[0].dims}: "
              f"{after.n_threads} threads")


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        registry = train_registry(root)
        for entry in registry.entries():
            print(f"  registry: {entry.ref:>14} {entry.model_name:<18} "
                  f"{'latest' if entry.latest else ''}")
        asyncio.run(serve_and_reload(registry))


if __name__ == "__main__":
    main()
