"""Quickstart: install ADSALA on a simulated platform and speed up GEMM.

Runs a small installation-time campaign on the simulated Gadi node
(2-socket Intel Cascade Lake), trains the thread-selection model, and
compares a few GEMM calls against the traditional "use every core"
configuration.

Run with::

    python examples/quickstart.py
"""

from repro import AdsalaGemm, GemmSpec, quick_install


def main():
    print("Installing ADSALA on simulated 'gadi' (2x 24-core Cascade Lake)...")
    bundle, simulator = quick_install("gadi", n_shapes=120, memory_cap_mb=100)
    print(f"  selected model: {bundle.config.model_name}")
    print(f"  thread grid:    {bundle.config.thread_grid}")
    print(f"  campaign cost:  {simulator.clock.node_hours:.4f} simulated node hours")
    print()

    cases = [
        ("skinny (ResNet-style)", GemmSpec(64, 2048, 64)),
        ("tall-skinny", GemmSpec(4096, 64, 64)),
        ("mid square", GemmSpec(1024, 1024, 1024)),
        ("large square", GemmSpec(4000, 4000, 4000)),
    ]

    print(f"{'case':>22} {'mem':>9} {'threads':>8} {'ADSALA':>10} "
          f"{'max-thread':>11} {'speedup':>8}")
    with AdsalaGemm(bundle, simulator) as gemm:
        for label, spec in cases:
            record = gemm.run(spec)
            baseline = gemm.run_baseline(spec)
            print(f"{label:>22} {spec.memory_mb:8.1f}M {record.n_threads:8d} "
                  f"{record.runtime * 1e3:9.3f}ms {baseline * 1e3:10.3f}ms "
                  f"{baseline / record.runtime:7.2f}x")

    print("\nDone. The skinny shapes show the paper's headline effect: the "
          "ML model avoids the max-thread packing/synchronisation collapse.")


if __name__ == "__main__":
    main()
