"""One server, four BLAS routines — the routine-generic runtime.

Trains a thread-selection model for **each** registered routine (GEMM,
GEMV, SYRK, TRSM) on the simulated Gadi node, publishes all four into a
versioned model registry, and then drives a mixed Poisson request
stream through a *single* :class:`~repro.serve.server.GemmServer`:

* one shard per routine (each shard a
  :class:`~repro.engine.service.GemmService` over that routine's
  published bundle);
* a :class:`~repro.serve.router.RoutineRouter` resolving every request
  to its routine's shard by the spec's ``routine`` tag;
* per-routine telemetry showing that the bandwidth-bound GEMV shard
  picks far smaller thread teams than the compute-bound GEMM shard —
  the whole reason per-routine models matter.

The same artefacts also serve through one *multi-routine* engine
service (``GemmService.from_registry``) — the in-process equivalent —
and the example asserts both paths pick identical thread counts.

Run with::

    python examples/serve_mixed_routines.py
"""

import tempfile

import numpy as np

from repro import GemmService, GemmServer, routine_names
from repro.bench.report import format_table
from repro.core.routines import get_routine, routine_of
from repro.machine.presets import gadi
from repro.machine.simulator import MachineSimulator
from repro.serve import RoutineRouter, poisson_trace, replay_trace
from repro.train.matrix import build_workflow
from repro.train.registry import ModelRegistry

GRID = [1, 2, 4, 8, 12, 16, 24, 32, 48]


def train_registry(root: str) -> ModelRegistry:
    """One installation per routine, published as registry cells."""
    registry = ModelRegistry(root)
    for routine in routine_names():
        print(f"installing {routine} on simulated 'gadi'...")
        workflow = build_workflow(routine, "gadi", seed=0, n_shapes=60,
                                  thread_grid=GRID, tune_iters=2,
                                  cv_folds=2, repeats=5)
        record = registry.publish(workflow.run(), routine=routine,
                                  machine="gadi")
        print(f"  published {record.ref} ({record.model_name})")
    return registry


def mixed_trace(n_requests: int = 120, seed: int = 1) -> list:
    """Interleaved requests across all four routines."""
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(8):
        for routine in routine_names():
            info = get_routine(routine)
            pool.append(info.build(*rng.integers(64, 2500,
                                                 size=info.n_dims)))
    return poisson_trace(pool, rate_hz=1000.0, n_requests=n_requests,
                         n_clients=4, seed=seed)


def main():
    with tempfile.TemporaryDirectory() as root:
        registry = train_registry(root)
        trace = mixed_trace()

        # --- path 1: one server, one shard per routine --------------
        shards = {routine: GemmService.from_bundle(
            registry.load(routine, "gadi"),
            MachineSimulator(gadi(), seed=0))
            for routine in routine_names()}
        server = GemmServer(shards, router=RoutineRouter(),
                            max_batch=16, max_wait_ms=2.0)
        outcome = replay_trace(server, trace)

        rows = []
        for routine, entry in sorted(
                server.telemetry.routine_stats().items()):
            served = [r for r in outcome.records
                      if r is not None and routine_of(r.spec) == routine]
            rows.append({
                "routine": routine,
                "served": entry["served"],
                "median_threads": int(np.median(
                    [r.n_threads for r in served])),
                "p99_ms": entry["latency_ms"]["p99_ms"],
            })
        print()
        print(format_table(rows, title="per-routine serving "
                                       f"({outcome.served} requests, "
                                       f"{outcome.requests_per_sec:.0f} req/s)"))
        print("\nGEMV's median team size sits far below GEMM's — the "
              "bandwidth roofline the per-routine models capture.")

        # --- path 2: one multi-routine engine service ----------------
        service = GemmService.from_registry(
            registry, MachineSimulator(gadi(), seed=0))
        records = service.run_batch([item.spec for item in trace])
        assert [r.n_threads for r in records] == outcome.thread_choices(), \
            "engine and server paths must pick identical thread counts"
        print("\nmulti-routine GemmService.from_registry picked identical "
              "thread counts for the whole trace (bitwise).")


if __name__ == "__main__":
    main()
