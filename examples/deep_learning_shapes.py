"""Deep-learning inference shapes: the paper's motivating workload.

The introduction cites ResNet's convolution-lowered GEMMs (operands like
64 x 3000) as a case where small and irregular-shaped GEMM dominates.
This example simulates one inference pass: a sequence of im2col-style
GEMMs (skinny, repeated per layer and per batch), and measures the
cumulative wall-time of ADSALA's thread selection versus the default.

It also demonstrates the runtime memoisation: inside the batch loop the
same shapes repeat, so the model is evaluated once per layer, not once
per call.

Run with::

    python examples/deep_learning_shapes.py
"""

from repro import AdsalaGemm, GemmSpec, quick_install

#: Convolution-lowered GEMM shapes of a ResNet-ish forward pass:
#: (out_channels x (in_channels*k*k)) @ ((in_channels*k*k) x out_pixels).
LAYERS = [
    ("conv1 7x7/2", GemmSpec(64, 147, 12544)),
    ("conv2_x 3x3", GemmSpec(64, 576, 3136)),
    ("conv3_x 3x3", GemmSpec(128, 1152, 784)),
    ("conv4_x 3x3", GemmSpec(256, 2304, 196)),
    ("conv5_x 3x3", GemmSpec(512, 4608, 49)),
    ("fc", GemmSpec(1000, 512, 1)),
]
BATCHES = 16


def main():
    print("Installing ADSALA on simulated 'setonix' (2x 64-core Milan)...")
    bundle, sim = quick_install("setonix", n_shapes=120, memory_cap_mb=100,
                                thread_grid=[1, 2, 4, 8, 16, 32, 64, 128, 256])
    print(f"  selected model: {bundle.config.model_name}\n")

    # Batched inference processes one layer across the whole batch before
    # moving on, so consecutive GEMM calls share their shape — exactly the
    # loop structure the paper's last-call memoisation targets.
    total_ml, total_base = 0.0, 0.0
    per_layer = {}
    with AdsalaGemm(bundle, sim) as gemm:
        for name, spec in LAYERS:
            baseline = gemm.run_baseline(spec)
            for _ in range(BATCHES):
                record = gemm.run(spec)
                total_ml += record.runtime
                total_base += baseline
            per_layer[name] = (record.n_threads, baseline * BATCHES)
        memo_rate = gemm.memo_hit_rate

    print(f"{'layer':>14} {'m x k x n':>18} {'ADSALA threads':>15}")
    for name, spec in LAYERS:
        chosen, _ = per_layer[name]
        print(f"{name:>14} {spec.m:5d} x{spec.k:5d} x{spec.n:5d} {chosen:15d}")

    print(f"\n{BATCHES} batches x {len(LAYERS)} layers "
          f"({BATCHES * len(LAYERS)} GEMM calls)")
    print(f"  default (max threads): {total_base * 1e3:9.2f} ms")
    print(f"  ADSALA:                {total_ml * 1e3:9.2f} ms")
    print(f"  end-to-end speedup:    {total_base / total_ml:9.2f}x")
    print(f"  memoisation hit rate:  {memo_rate:9.1%} "
          f"(repeated shapes skip model evaluation)")


if __name__ == "__main__":
    main()
