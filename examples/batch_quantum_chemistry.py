"""Batched tensor-contraction GEMMs from a quantum-chemistry workload.

Fock-matrix builds and integral transformations in quantum chemistry
reduce to streams of modest, irregularly-shaped GEMMs — exactly the
regime (small and irregular shapes, many calls) the paper targets.  This
example simulates an SCF-iteration-like workload on the Setonix node and
serves it through the engine's :class:`~repro.engine.service.GemmService`:
each iteration's contraction stream is submitted as one batch, so
distinct uncached shapes share a single vectorised model evaluation and
repeat shapes are answered from the LRU prediction cache.

It reports per-shape thread choices, the cumulative speedup, the cache
effectiveness, and the node-hours accounting for the whole run.

Run with::

    python examples/batch_quantum_chemistry.py
"""

import numpy as np

from repro import GemmService, GemmSpec, quick_install
from repro.bench.report import cache_effectiveness_table

#: Cartesian-shell block sizes (s, p, d, f aggregates) typical of a
#: contracted Gaussian basis.
BLOCK_SIZES = [1, 3, 6, 10, 15]
N_OCCUPIED = 64      # occupied orbitals
N_BASIS = 512        # basis functions
SCF_ITERATIONS = 8


def contraction_shapes(rng):
    """GEMM shapes of one SCF iteration's contraction stream."""
    shapes = []
    # (ij|P) half-transformations: (block*block) x naux x nocc-ish tiles
    for _ in range(24):
        bi = int(rng.choice(BLOCK_SIZES))
        bj = int(rng.choice(BLOCK_SIZES))
        shapes.append(GemmSpec(bi * bj, N_BASIS, N_OCCUPIED))
    # Exchange build: nocc x nbasis x nbasis
    shapes.append(GemmSpec(N_OCCUPIED, N_BASIS, N_BASIS))
    # Coulomb build: nbasis x nbasis x nocc
    shapes.append(GemmSpec(N_BASIS, N_BASIS, N_OCCUPIED))
    # Density update: nbasis x nocc x nbasis
    shapes.append(GemmSpec(N_BASIS, N_OCCUPIED, N_BASIS))
    return shapes


def main():
    print("Installing ADSALA on simulated 'setonix'...")
    bundle, sim = quick_install("setonix", n_shapes=120, memory_cap_mb=100,
                                thread_grid=[1, 2, 4, 8, 16, 32, 64, 128, 256])
    print(f"  selected model: {bundle.config.model_name}\n")

    rng = np.random.default_rng(7)
    total_ml, total_base = 0.0, 0.0
    baselines = {}
    choices = {}
    calls = 0
    with GemmService.from_bundle(bundle, sim, cache_size=256) as service:
        for it in range(SCF_ITERATIONS):
            # One SCF iteration = one batch through the engine.
            records = service.run_batch(contraction_shapes(rng))
            calls += len(records)
            for record in records:
                total_ml += record.runtime
                dims = record.spec.dims
                if dims not in baselines:
                    baselines[dims] = service.run_baseline(record.spec)
                total_base += baselines[dims]
                choices.setdefault(dims, record.n_threads)
        stats = service.stats()

    print(f"{'shape (m,k,n)':>22} {'chosen threads':>15}")
    for dims, threads in sorted(choices.items())[:12]:
        print(f"{str(dims):>22} {threads:15d}")
    if len(choices) > 12:
        print(f"{'...':>22} ({len(choices)} distinct shapes total)")

    print(f"\n{SCF_ITERATIONS} SCF iterations, {calls} GEMM calls, "
          f"{stats['batches']} batched predictions "
          f"({stats['evaluations']} model evaluations)")
    print(f"  default (256 threads): {total_base * 1e3:9.2f} ms")
    print(f"  ADSALA:                {total_ml * 1e3:9.2f} ms")
    print(f"  workload speedup:      {total_base / total_ml:9.2f}x")
    print()
    print(cache_effectiveness_table(stats))
    print(f"\nSimulated machine time consumed: {sim.clock.node_hours:.5f} node hours")


if __name__ == "__main__":
    main()
