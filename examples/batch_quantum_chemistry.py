"""Batched tensor-contraction GEMMs from a quantum-chemistry workload.

Fock-matrix builds and integral transformations in quantum chemistry
reduce to streams of modest, irregularly-shaped GEMMs — exactly the
regime (small and irregular shapes, many calls) the paper targets.  This
example simulates an SCF-iteration-like workload on the Setonix node:
shell-pair batches produce GEMMs whose dimensions depend on basis-set
block sizes, repeated over iterations.

It reports per-shape thread choices and the cumulative speedup, and
shows the node-hours accounting for the whole run.

Run with::

    python examples/batch_quantum_chemistry.py
"""

import numpy as np

from repro import AdsalaGemm, GemmSpec, quick_install

#: Cartesian-shell block sizes (s, p, d, f aggregates) typical of a
#: contracted Gaussian basis.
BLOCK_SIZES = [1, 3, 6, 10, 15]
N_OCCUPIED = 64      # occupied orbitals
N_BASIS = 512        # basis functions
SCF_ITERATIONS = 8


def contraction_shapes(rng):
    """GEMM shapes of one SCF iteration's contraction stream."""
    shapes = []
    # (ij|P) half-transformations: (block*block) x naux x nocc-ish tiles
    for _ in range(24):
        bi = int(rng.choice(BLOCK_SIZES))
        bj = int(rng.choice(BLOCK_SIZES))
        shapes.append(GemmSpec(bi * bj, N_BASIS, N_OCCUPIED))
    # Exchange build: nocc x nbasis x nbasis
    shapes.append(GemmSpec(N_OCCUPIED, N_BASIS, N_BASIS))
    # Coulomb build: nbasis x nbasis x nocc
    shapes.append(GemmSpec(N_BASIS, N_BASIS, N_OCCUPIED))
    # Density update: nbasis x nocc x nbasis
    shapes.append(GemmSpec(N_BASIS, N_OCCUPIED, N_BASIS))
    return shapes


def main():
    print("Installing ADSALA on simulated 'setonix'...")
    bundle, sim = quick_install("setonix", n_shapes=120, memory_cap_mb=100,
                                thread_grid=[1, 2, 4, 8, 16, 32, 64, 128, 256])
    print(f"  selected model: {bundle.config.model_name}\n")

    rng = np.random.default_rng(7)
    total_ml, total_base = 0.0, 0.0
    choices = {}
    with AdsalaGemm(bundle, sim) as gemm:
        for it in range(SCF_ITERATIONS):
            for spec in contraction_shapes(rng):
                record = gemm.run(spec)
                total_ml += record.runtime
                total_base += gemm.run_baseline(spec)
                choices.setdefault(spec.dims, record.n_threads)

    print(f"{'shape (m,k,n)':>22} {'chosen threads':>15}")
    for dims, threads in sorted(choices.items())[:12]:
        print(f"{str(dims):>22} {threads:15d}")
    if len(choices) > 12:
        print(f"{'...':>22} ({len(choices)} distinct shapes total)")

    calls = SCF_ITERATIONS * 27
    print(f"\n{SCF_ITERATIONS} SCF iterations, {calls} GEMM calls")
    print(f"  default (256 threads): {total_base * 1e3:9.2f} ms")
    print(f"  ADSALA:                {total_ml * 1e3:9.2f} ms")
    print(f"  workload speedup:      {total_base / total_ml:9.2f}x")
    print(f"\nSimulated machine time consumed: {sim.clock.node_hours:.5f} node hours")


if __name__ == "__main__":
    main()
