"""ExperimentContext caching behaviour."""

import pytest

from repro.bench.runner import ExperimentContext


@pytest.fixture
def fresh_ctx():
    return ExperimentContext()


class TestExperimentContext:
    def test_singleton_get(self):
        assert ExperimentContext.get() is ExperimentContext.get()

    def test_simulator_cached_per_key(self, fresh_ctx):
        a = fresh_ctx.simulator("tiny", seed=0)
        b = fresh_ctx.simulator("tiny", seed=0)
        c = fresh_ctx.simulator("tiny", seed=1)
        assert a is b and a is not c

    def test_ht_variants_distinct(self, fresh_ctx):
        on = fresh_ctx.simulator("tiny", hyperthreading=True)
        off = fresh_ctx.simulator("tiny", hyperthreading=False)
        assert on is not off
        assert off.max_threads() == on.max_threads() // 2

    def test_dataset_cached(self, fresh_ctx):
        a = fresh_ctx.dataset("tiny", n_shapes=5, memory_cap_mb=8,
                              thread_grid=[1, 2, 4])
        b = fresh_ctx.dataset("tiny", n_shapes=5, memory_cap_mb=8,
                              thread_grid=[1, 2, 4])
        assert a is b
        assert len(a) == 5 * 3

    def test_bundle_key_handles_list_kwargs(self, fresh_ctx):
        from repro.ml.registry import candidate_models

        cands = [c for c in candidate_models(budget="fast")
                 if c.name == "Bayes Regression"]
        # Passing a list-valued kwarg (thread_grid) must not crash the
        # cache key construction.
        b1 = fresh_ctx.bundle("tiny", n_shapes=20, memory_cap_mb=8,
                              thread_grid=[1, 2, 4], candidates=cands,
                              tune_iters=1, cv_folds=2, repeats=2)
        b2 = fresh_ctx.bundle("tiny", n_shapes=20, memory_cap_mb=8,
                              thread_grid=[1, 2, 4], candidates=cands,
                              tune_iters=1, cv_folds=2, repeats=2)
        assert b1 is b2

    def test_fresh_test_shapes_within_cap(self, fresh_ctx):
        shapes = fresh_ctx.fresh_test_shapes(8, n=10)
        assert len(shapes) == 10
        assert all(s.memory_mb <= 8 for s in shapes)
