"""Training-pipeline fixtures: a tiny gathered campaign and a workflow
factory sized so the whole staged pipeline runs in well under a second
per invocation.

``eval_time_s`` is pinned in the factory so bundles are bitwise
reproducible — the checksum-equality assertions (resume vs fresh run,
serial vs parallel) depend on no wall-clock measurement entering the
selection report.
"""

from __future__ import annotations

import pytest

from repro.core.gather import DataGatherer
from repro.core.training import InstallationWorkflow
from repro.machine.presets import tiny_test_node
from repro.machine.simulator import MachineSimulator
from repro.ml.registry import candidate_models

MB = 1024 * 1024
GRID = [1, 2, 4, 8, 12, 16]
CANDIDATE_NAMES = ("Linear Regression", "ElasticNet")


@pytest.fixture(scope="session")
def train_data():
    """One small gathered campaign shared by every pipeline test."""
    sim = MachineSimulator(tiny_test_node(), seed=0)
    gatherer = DataGatherer(sim, thread_grid=GRID, repeats=2)
    return gatherer.gather(n_shapes=30, memory_cap_bytes=8 * MB, seed=0)


@pytest.fixture
def make_workflow():
    """Factory for small deterministic workflows on the tiny node."""

    def make(candidate_names=CANDIDATE_NAMES, **overrides):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        candidates = [c for c in candidate_models(budget="fast")
                      if c.name in candidate_names]
        settings = dict(memory_cap_bytes=8 * MB, n_shapes=30,
                        thread_grid=GRID, candidates=candidates,
                        tune_iters=2, cv_folds=2, repeats=2, seed=0,
                        eval_time_s=1e-5)
        settings.update(overrides)
        return InstallationWorkflow(sim, **settings)

    return make
