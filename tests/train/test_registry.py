"""Model registry: versioning, latest pointers, checksum enforcement."""

import os

import pytest

from repro.core.serialize import (MODEL_FILENAME, SCHEMA_VERSION, BundleError,
                                  BundleIntegrityError)
from repro.train.registry import ModelRegistry, RegistryError


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestPublish:
    def test_versions_increment_and_latest_moves(self, registry,
                                                 tiny_bundle):
        bundle, _ = tiny_bundle
        first = registry.publish(bundle, routine="gemm")
        second = registry.publish(bundle, routine="gemm")
        assert (first.version, second.version) == (1, 2)
        assert registry.resolve("gemm", "tiny").version == 2
        old = registry.resolve("gemm", "tiny", version=1)
        assert not old.latest and os.path.isdir(old.path)

    def test_axes_are_independent(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        record = registry.publish(bundle, routine="gemv")
        assert record.version == 1
        assert {(e.routine, e.machine, e.version)
                for e in registry.entries()} \
            == {("gemm", "tiny", 1), ("gemv", "tiny", 1)}

    def test_publish_emits_audit_event_and_counter(self, registry,
                                                   tiny_bundle):
        from repro.obs.metrics import MetricsRegistry, set_default_registry

        bundle, _ = tiny_bundle
        metrics = MetricsRegistry()
        set_default_registry(metrics)
        try:
            record = registry.publish(bundle, routine="gemm")
            registry.publish(bundle, routine="gemm")
        finally:
            set_default_registry(None)

        events = metrics.events("registry_publish")
        assert [e["version"] for e in events] == [1, 2]
        assert events[0]["routine"] == "gemm"
        assert events[0]["machine"] == record.machine
        assert events[0]["checksum"] == record.checksum
        assert metrics.counter("registry_publishes", routine="gemm",
                               machine=record.machine).value == 2.0

    def test_unknown_routine_rejected(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        with pytest.raises(RegistryError, match="unknown routine"):
            registry.publish(bundle, routine="axpy")


class TestLoad:
    def test_round_trip_predicts_identically(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        loaded = registry.load("gemm", "tiny")
        assert loaded.config == bundle.config
        assert loaded.predictor().predict_threads(100, 100, 100) \
            == bundle.predictor().predict_threads(100, 100, 100)

    def test_corrupt_bundle_fails_loudly(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        record = registry.publish(bundle, routine="gemm")
        model_path = os.path.join(record.path, MODEL_FILENAME)
        with open(model_path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\x00\x00\x00\x00")
        with pytest.raises(BundleIntegrityError, match="corrupt"):
            registry.load("gemm", "tiny")

    def test_index_bundle_disagreement_fails(self, registry, tiny_bundle,
                                             tmp_path):
        bundle, _ = tiny_bundle
        record = registry.publish(bundle, routine="gemm")
        # Re-write the bundle dir wholesale (manifest self-consistent but
        # different content than the registry index recorded).
        import copy

        from repro.core.serialize import save_bundle

        tampered = copy.deepcopy(bundle)
        tampered.config.model_params = {"tampered": True}
        save_bundle(tampered, record.path)
        with pytest.raises(BundleError, match="disagree"):
            registry.load("gemm", "tiny")

    def test_missing_entry_errors(self, registry):
        with pytest.raises(RegistryError, match="no models published"):
            registry.resolve("gemm", "nowhere")

    def test_unknown_version_errors(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        with pytest.raises(RegistryError, match="no version 9"):
            registry.resolve("gemm", "tiny", version=9)


class TestInspect:
    def test_manifest_carries_selection_metadata(self, registry,
                                                 tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        info = registry.inspect("gemm", "tiny")
        manifest = info["manifest"]
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["version"] == 1
        assert manifest["model_name"] == bundle.config.model_name
        assert len(manifest["selection"]) == len(bundle.report.rows)
        assert info["checksum"] == manifest["checksum"]


class TestGC:
    def _publish(self, registry, bundle, routine="gemm", n=1):
        for _ in range(n):
            registry.publish(bundle, routine=routine)

    def test_keeps_newest_and_removes_rest(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        self._publish(registry, bundle, n=4)
        report = registry.gc(keep_last=2)
        assert sorted(report["removed"]) == ["gemm/tiny@1", "gemm/tiny@2"]
        assert report["n_removed"] == 2 and report["n_kept"] == 2
        assert registry.resolve("gemm", "tiny").version == 4
        assert registry.resolve("gemm", "tiny", version=3).version == 3
        with pytest.raises(RegistryError):
            registry.resolve("gemm", "tiny", version=1)

    def test_bundle_directories_are_deleted(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        self._publish(registry, bundle, n=3)
        doomed = registry.resolve("gemm", "tiny", version=1).path
        survivor = registry.resolve("gemm", "tiny", version=3).path
        registry.gc(keep_last=1)
        assert not os.path.exists(doomed)
        assert os.path.isdir(survivor)
        # Survivors still load with their checksums intact.
        registry.load("gemm", "tiny")

    def test_latest_is_never_collected(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        self._publish(registry, bundle, n=3)
        # Roll "latest" back to version 1 by hand (a rollback moved it).
        ref = registry._read_ref("gemm", "tiny")
        ref["latest"] = 1
        registry._write_ref("gemm", "tiny", ref)
        report = registry.gc(keep_last=1)
        # Version 3 survives as the newest keep_last window, version 1
        # survives because latest points at it; only 2 is collected.
        assert report["removed"] == ["gemm/tiny@2"]
        assert registry.resolve("gemm", "tiny").version == 1
        registry.load("gemm", "tiny")

    def test_idempotent_and_cell_scoped(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        self._publish(registry, bundle, routine="gemm", n=3)
        self._publish(registry, bundle, routine="gemv", n=2)
        report = registry.gc(keep_last=1, routine="gemm")
        assert sorted(report["removed"]) == ["gemm/tiny@1", "gemm/tiny@2"]
        # gemv untouched by the routine filter.
        assert registry.resolve("gemv", "tiny", version=1).version == 1
        assert registry.gc(keep_last=1, routine="gemm")["n_removed"] == 0

    def test_keep_last_validated(self, registry):
        with pytest.raises(RegistryError):
            registry.gc(keep_last=0)


class TestWatch:
    def test_idle_poll_reports_nothing(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        watcher = registry.watch([("gemm", "tiny")])
        assert watcher.poll() == []
        assert watcher.generation == 0

    def test_publish_is_detected_once(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        watcher = registry.watch([("gemm", "tiny")])
        registry.publish(bundle, routine="gemm")
        changed = watcher.poll()
        assert [(r.routine, r.machine, r.version)
                for r in changed] == [("gemm", "tiny", 2)]
        assert watcher.generation == 1
        assert watcher.poll() == []

    def test_intermediate_versions_collapse_to_latest(self, registry,
                                                      tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        watcher = registry.watch([("gemm", "tiny")])
        registry.publish(bundle, routine="gemm")
        registry.publish(bundle, routine="gemm")
        changed = watcher.poll()
        assert [r.version for r in changed] == [3]

    def test_unpublished_cell_waits_for_first_publish(self, registry,
                                                      tiny_bundle):
        bundle, _ = tiny_bundle
        watcher = registry.watch([("gemm", "tiny")])
        assert watcher.poll() == []
        registry.publish(bundle, routine="gemm")
        assert [r.version for r in watcher.poll()] == [1]

    def test_cell_generation_token(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        assert registry.cell_generation("gemm", "tiny") == (None, None)
        registry.publish(bundle, routine="gemm")
        first = registry.cell_generation("gemm", "tiny")
        assert first[0] == 1 and first[1] is not None
        registry.publish(bundle, routine="gemm")
        second = registry.cell_generation("gemm", "tiny")
        assert second[0] == 2 and second[1] != first[1]
