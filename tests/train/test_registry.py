"""Model registry: versioning, latest pointers, checksum enforcement."""

import os

import pytest

from repro.core.serialize import (MODEL_FILENAME, SCHEMA_VERSION, BundleError,
                                  BundleIntegrityError)
from repro.train.registry import ModelRegistry, RegistryError


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestPublish:
    def test_versions_increment_and_latest_moves(self, registry,
                                                 tiny_bundle):
        bundle, _ = tiny_bundle
        first = registry.publish(bundle, routine="gemm")
        second = registry.publish(bundle, routine="gemm")
        assert (first.version, second.version) == (1, 2)
        assert registry.resolve("gemm", "tiny").version == 2
        old = registry.resolve("gemm", "tiny", version=1)
        assert not old.latest and os.path.isdir(old.path)

    def test_axes_are_independent(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        record = registry.publish(bundle, routine="gemv")
        assert record.version == 1
        assert {(e.routine, e.machine, e.version)
                for e in registry.entries()} \
            == {("gemm", "tiny", 1), ("gemv", "tiny", 1)}

    def test_publish_emits_audit_event_and_counter(self, registry,
                                                   tiny_bundle):
        from repro.obs.metrics import MetricsRegistry, set_default_registry

        bundle, _ = tiny_bundle
        metrics = MetricsRegistry()
        set_default_registry(metrics)
        try:
            record = registry.publish(bundle, routine="gemm")
            registry.publish(bundle, routine="gemm")
        finally:
            set_default_registry(None)

        events = metrics.events("registry_publish")
        assert [e["version"] for e in events] == [1, 2]
        assert events[0]["routine"] == "gemm"
        assert events[0]["machine"] == record.machine
        assert events[0]["checksum"] == record.checksum
        assert metrics.counter("registry_publishes", routine="gemm",
                               machine=record.machine).value == 2.0

    def test_unknown_routine_rejected(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        with pytest.raises(RegistryError, match="unknown routine"):
            registry.publish(bundle, routine="axpy")


class TestLoad:
    def test_round_trip_predicts_identically(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        loaded = registry.load("gemm", "tiny")
        assert loaded.config == bundle.config
        assert loaded.predictor().predict_threads(100, 100, 100) \
            == bundle.predictor().predict_threads(100, 100, 100)

    def test_corrupt_bundle_fails_loudly(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        record = registry.publish(bundle, routine="gemm")
        model_path = os.path.join(record.path, MODEL_FILENAME)
        with open(model_path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\x00\x00\x00\x00")
        with pytest.raises(BundleIntegrityError, match="corrupt"):
            registry.load("gemm", "tiny")

    def test_index_bundle_disagreement_fails(self, registry, tiny_bundle,
                                             tmp_path):
        bundle, _ = tiny_bundle
        record = registry.publish(bundle, routine="gemm")
        # Re-write the bundle dir wholesale (manifest self-consistent but
        # different content than the registry index recorded).
        import copy

        from repro.core.serialize import save_bundle

        tampered = copy.deepcopy(bundle)
        tampered.config.model_params = {"tampered": True}
        save_bundle(tampered, record.path)
        with pytest.raises(BundleError, match="disagree"):
            registry.load("gemm", "tiny")

    def test_missing_entry_errors(self, registry):
        with pytest.raises(RegistryError, match="no models published"):
            registry.resolve("gemm", "nowhere")

    def test_unknown_version_errors(self, registry, tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        with pytest.raises(RegistryError, match="no version 9"):
            registry.resolve("gemm", "tiny", version=9)


class TestInspect:
    def test_manifest_carries_selection_metadata(self, registry,
                                                 tiny_bundle):
        bundle, _ = tiny_bundle
        registry.publish(bundle, routine="gemm")
        info = registry.inspect("gemm", "tiny")
        manifest = info["manifest"]
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["version"] == 1
        assert manifest["model_name"] == bundle.config.model_name
        assert len(manifest["selection"]) == len(bundle.report.rows)
        assert info["checksum"] == manifest["checksum"]
