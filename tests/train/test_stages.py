"""Stage protocol and stage-cache behaviour on toy stages."""

import pytest

from repro.train.stages import Stage, StageCache, run_stages


class _Ctx:
    """Toy run context: per-stage config dicts + execution log."""

    def __init__(self, **configs):
        self.configs = configs
        self.log = []


class _Times2(Stage):
    name = "a"

    def config(self, ctx):
        return ctx.configs.get("a", {})

    def run(self, ctx, inputs):
        ctx.log.append("a")
        return ctx.configs.get("a", {}).get("x", 1) * 2


class _Plus(Stage):
    name = "b"
    requires = ("a",)

    def config(self, ctx):
        return ctx.configs.get("b", {})

    def run(self, ctx, inputs):
        ctx.log.append("b")
        return inputs["a"] + ctx.configs.get("b", {}).get("y", 0)


class _Square(Stage):
    name = "c"
    requires = ("b",)

    def run(self, ctx, inputs):
        ctx.log.append("c")
        return inputs["b"] ** 2


STAGES = [_Times2(), _Plus(), _Square()]


class TestStageCache:
    def test_memory_hit_miss_counters(self):
        cache = StageCache()
        found, _ = cache.load("s", "k")
        assert not found and cache.misses == 1
        cache.store("s", "k", 42)
        found, value = cache.load("s", "k")
        assert found and value == 42 and cache.hits == 1

    def test_disk_round_trip(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store("s", "deadbeef", {"v": [1, 2, 3]})
        assert cache.contains("s", "deadbeef")
        found, value = StageCache(tmp_path).load("s", "deadbeef")
        assert found and value == {"v": [1, 2, 3]}

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store("s", "k1", [1, 2])
        pkl = tmp_path / "s" / "k1.pkl"
        pkl.write_bytes(b"not a pickle")
        found, _ = StageCache(tmp_path).load("s", "k1")
        assert not found  # degraded to recompute, no crash


class TestRunStages:
    def test_first_run_executes_everything(self):
        ctx = _Ctx(a={"x": 3})
        run = run_stages(STAGES, ctx)
        assert run.artifacts == {"a": 6, "b": 6, "c": 36}
        assert ctx.log == ["a", "b", "c"]
        assert run.cache_hits == 0

    def test_identical_rerun_is_all_hits(self, tmp_path):
        cache = StageCache(tmp_path)
        run_stages(STAGES, _Ctx(a={"x": 3}), cache)
        ctx = _Ctx(a={"x": 3})
        run = run_stages(STAGES, ctx, cache)
        assert ctx.log == []  # nothing executed
        assert run.cache_hits == 3
        assert run.artifacts["c"] == 36

    def test_config_change_invalidates_only_downstream(self, tmp_path):
        cache = StageCache(tmp_path)
        run_stages(STAGES, _Ctx(a={"x": 3}), cache)
        ctx = _Ctx(a={"x": 3}, b={"y": 1})  # tweak the middle stage
        run = run_stages(STAGES, ctx, cache)
        assert ctx.log == ["b", "c"]  # upstream gather-equivalent reused
        assert [kind for _, kind in run.events] == ["hit", "run", "run"]
        assert run.artifacts["c"] == 49

    def test_version_bump_invalidates(self, tmp_path):
        cache = StageCache(tmp_path)
        run_stages(STAGES, _Ctx(), cache)
        bumped = _Plus()
        bumped.version = 2
        ctx = _Ctx()
        run_stages([_Times2(), bumped, _Square()], ctx, cache)
        assert ctx.log == ["b", "c"]

    def test_interrupt_resumes_from_last_finished(self, tmp_path):
        cache = StageCache(tmp_path)

        class _Boom(_Plus):
            def run(self, ctx, inputs):
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_stages([_Times2(), _Boom(), _Square()], _Ctx(), cache)
        ctx = _Ctx()
        run = run_stages(STAGES, ctx, cache)
        assert ctx.log == ["b", "c"]  # stage a survived the interrupt
        assert run.cache_hits == 1

    def test_missing_dependency_raises(self):
        with pytest.raises(ValueError, match="requires"):
            run_stages([_Plus()], _Ctx())
