"""The staged ADSALA pipeline: facade, caching, resume, equivalence."""

import pickle

import pytest

from repro.core.serialize import bundle_checksum, save_bundle
from repro.train.pipeline import TrainingPipeline, TuneCandidateStage
from repro.train.stages import StageCache


def _model_bytes(bundle):
    return pickle.dumps(bundle.model)


class TestFacade:
    def test_workflow_run_delegates_to_pipeline(self, make_workflow,
                                                train_data):
        workflow = make_workflow()
        bundle = workflow.run(train_data)
        assert {r.name for r in bundle.report.rows} \
            == {"Linear Regression", "ElasticNet"}
        assert bundle.config.model_name == bundle.report.selected
        run = workflow.last_pipeline_.last_run_
        assert [name for name, _ in run.events] == [
            "gather", "split", "preprocess", "tune:Linear Regression",
            "tune:ElasticNet", "select"]
        assert "train_s" in workflow.timings_

    def test_gather_stage_runs_campaign_when_no_data(self, make_workflow):
        workflow = make_workflow(n_shapes=12)
        bundle = workflow.run()
        assert workflow.timings_["gather_s"] > 0
        assert bundle.report.selected in ("Linear Regression", "ElasticNet")

    def test_run_publishes_stage_timings_and_audit_event(self, make_workflow,
                                                         train_data):
        from repro.obs.metrics import MetricsRegistry, set_default_registry

        registry = MetricsRegistry()
        set_default_registry(registry)
        try:
            workflow = make_workflow()
            workflow.run(train_data)
        finally:
            set_default_registry(None)

        stages = {i.labels["stage"]: i.value for i in registry.instruments()
                  if i.name == "train_stage_seconds"}
        assert {"gather", "split", "preprocess", "select",
                "tune:Linear Regression", "tune:ElasticNet"} <= set(stages)
        assert all(seconds >= 0 for seconds in stages.values())
        events = registry.events("train_run")
        assert len(events) == 1
        assert events[0]["stages_run"] == 6
        assert events[0]["stages_hit"] == 0
        assert events[0]["train_s"] >= 0


class TestStageCaching:
    def test_rerun_replays_every_stage(self, make_workflow, train_data,
                                       tmp_path):
        make_workflow().run(train_data, cache=tmp_path)
        workflow = make_workflow()
        bundle = workflow.run(train_data, cache=tmp_path)
        run = workflow.last_pipeline_.last_run_
        assert run.cache_hits == len(run.events)
        assert bundle.report.selected  # fully replayed, still complete

    def test_config_tweak_invalidates_only_downstream(self, make_workflow,
                                                      train_data, tmp_path):
        make_workflow().run(train_data, cache=tmp_path)
        workflow = make_workflow(tune_iters=1)  # tuning knob only
        workflow.run(train_data, cache=tmp_path)
        run = workflow.last_pipeline_.last_run_
        kinds = dict(run.events)
        assert kinds["gather"] == kinds["split"] == kinds["preprocess"] \
            == "hit"
        assert kinds["tune:ElasticNet"] == "run"
        assert kinds["select"] == "run"

    def test_different_data_invalidates_everything(self, make_workflow,
                                                   train_data, tmp_path):
        make_workflow().run(train_data, cache=tmp_path)
        smaller = train_data.select(train_data.threads <= 8)
        workflow = make_workflow()
        workflow.run(smaller, cache=tmp_path)
        assert workflow.last_pipeline_.last_run_.cache_hits == 0


class TestResumeAfterInterrupt:
    def test_resumed_run_reuses_stages_and_reproduces_checksum(
            self, make_workflow, train_data, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        # Kill the run inside the *second* tuning stage.
        original = TuneCandidateStage.run
        calls = []

        def dying(self, ctx, inputs):
            if len(calls) >= 1:
                raise KeyboardInterrupt("killed mid-bake-off")
            calls.append(self.name)
            return original(self, ctx, inputs)

        monkeypatch.setattr(TuneCandidateStage, "run", dying)
        with pytest.raises(KeyboardInterrupt):
            make_workflow().run(train_data, cache=cache_dir)
        monkeypatch.setattr(TuneCandidateStage, "run", original)

        workflow = make_workflow()
        resumed = workflow.run(train_data, cache=cache_dir)
        run = workflow.last_pipeline_.last_run_
        kinds = dict(run.events)
        # gather/split/preprocess and the finished candidate replay...
        assert kinds["gather"] == kinds["preprocess"] == "hit"
        assert kinds["tune:Linear Regression"] == "hit"
        # ...only the interrupted candidate and selection re-execute.
        assert kinds["tune:ElasticNet"] == "run"
        assert run.cache_hits == 4

        uninterrupted = make_workflow().run(train_data,
                                            cache=tmp_path / "fresh")
        save_bundle(resumed, tmp_path / "a")
        save_bundle(uninterrupted, tmp_path / "b")
        assert bundle_checksum(tmp_path / "a") \
            == bundle_checksum(tmp_path / "b")


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("n_jobs,executor", [(2, "thread"),
                                                 (4, "thread"),
                                                 (2, "process")])
    def test_selected_model_bitwise_identical(self, make_workflow,
                                              train_data, n_jobs, executor):
        serial = make_workflow(n_jobs=1).run(train_data)
        parallel = make_workflow(n_jobs=n_jobs,
                                 executor=executor).run(train_data)
        assert parallel.report.selected == serial.report.selected
        assert parallel.config.model_params == serial.config.model_params
        assert _model_bytes(parallel) == _model_bytes(serial)
        for a, b in zip(parallel.report.rows, serial.report.rows):
            assert a.name == b.name
            assert a.nrmse == b.nrmse
            assert a.best_params == b.best_params

    def test_pipeline_stats_expose_hit_counters(self, make_workflow,
                                                train_data, tmp_path):
        workflow = make_workflow()
        workflow.run(train_data, cache=tmp_path)
        pipeline = workflow.last_pipeline_
        stats = pipeline.stats()
        assert stats["stages_run"] == 6
        assert stats["stages_hit"] == 0
        assert stats["misses"] >= 6


class TestPipelineDirect:
    def test_cache_accepts_path_or_object(self, make_workflow, train_data,
                                          tmp_path):
        workflow = make_workflow()
        pipeline = TrainingPipeline(workflow, cache=StageCache(tmp_path))
        bundle = pipeline.run(train_data)
        again = TrainingPipeline(make_workflow(), cache=tmp_path)
        bundle2 = again.run(train_data)
        assert again.last_run_.cache_hits == 6
        assert _model_bytes(bundle) == _model_bytes(bundle2)
