"""Parallel tuning primitives: seeding, draws, schedule independence."""

import numpy as np
import pytest

from repro.gemm.parallel import WorkerPool
from repro.ml.model_selection import KFold, fold_indices
from repro.ml.registry import candidate_models
from repro.ml.tuning import RandomizedSearchCV, candidate_seed
from repro.train.tuning import ProcessPool, evaluate_params, make_pool


def _searcher(cand, seed=0, n_iter=3):
    return RandomizedSearchCV(cand.build(), cand.search_space,
                              n_iter=n_iter,
                              random_state=candidate_seed(seed, cand.name))


class TestCandidateSeed:
    def test_deterministic(self):
        a = np.random.default_rng(candidate_seed(0, "ElasticNet"))
        b = np.random.default_rng(candidate_seed(0, "ElasticNet"))
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_distinct_per_candidate_and_seed(self):
        draws = {np.random.default_rng(candidate_seed(s, n)).integers(1 << 30)
                 for s in (0, 1) for n in ("ElasticNet", "XGBoost")}
        assert len(draws) == 4

    def test_draws_stable_under_reordering(self):
        """The satellite fix: a candidate's sampled configurations do
        not depend on where it sits in the bake-off list."""
        cands = {c.name: c for c in candidate_models(budget="fast")}
        elastic = cands["ElasticNet"]
        alone = _searcher(elastic).sampled_params()
        for _ in ("XGBoost", "LightGBM"):  # "tune others first"
            _searcher(cands["XGBoost"]).sampled_params()
        reordered = _searcher(elastic).sampled_params()
        assert alone == reordered


class TestSampledParams:
    def test_matches_what_fit_evaluates(self, regression_data):
        X, y = regression_data
        cand = {c.name: c for c in candidate_models(
            budget="fast")}["ElasticNet"]
        searcher = _searcher(cand)
        declared = searcher.sampled_params()
        searcher.fit(X[:200], y[:200])
        evaluated = [r["params"] for r in searcher.cv_results_]
        assert sorted(map(repr, declared)) == sorted(map(repr, evaluated))

    def test_repeated_calls_identical(self):
        cand = {c.name: c for c in candidate_models(
            budget="fast")}["ElasticNet"]
        searcher = _searcher(cand)
        assert searcher.sampled_params() == searcher.sampled_params()


class TestEvaluateParams:
    @pytest.fixture
    def problem(self, regression_data):
        X, y = regression_data
        X, y = X[:240], y[:240]
        cand = {c.name: c for c in candidate_models(
            budget="fast")}["ElasticNet"]
        params = _searcher(cand, n_iter=4).sampled_params()
        folds = fold_indices(KFold(n_splits=3, shuffle=True, random_state=0),
                             X)
        return cand.build(), params, X, y, folds

    def test_results_sorted_descending(self, problem):
        est, params, X, y, folds = problem
        results = evaluate_params(est, params, X, y, folds)
        means = [r["mean_score"] for r in results]
        assert means == sorted(means, reverse=True)
        assert all(len(r["scores"]) == len(folds) for r in results)

    def test_worker_count_cannot_change_results(self, problem):
        est, params, X, y, folds = problem
        serial = evaluate_params(est, params, X, y, folds,
                                 pool=WorkerPool(1))
        for pool in (WorkerPool(3), ProcessPool(2)):
            with pool:
                parallel = evaluate_params(est, params, X, y, folds,
                                           pool=pool)
            assert [r["params"] for r in parallel] \
                == [r["params"] for r in serial]
            for a, b in zip(parallel, serial):
                np.testing.assert_array_equal(a["scores"], b["scores"])

    def test_empty_space_raises(self, problem):
        est, _, X, y, folds = problem
        with pytest.raises(ValueError, match="empty"):
            evaluate_params(est, [], X, y, folds)


class TestMakePool:
    def test_kinds(self):
        assert isinstance(make_pool(2, "thread"), WorkerPool)
        assert isinstance(make_pool(2, "process"), ProcessPool)
        with pytest.raises(ValueError, match="unknown executor"):
            make_pool(2, "carrier-pigeon")

    def test_worker_pool_preserves_order(self):
        with WorkerPool(4) as pool:
            out = pool.map(lambda i: i * i, range(20))
        assert out == [i * i for i in range(20)]
