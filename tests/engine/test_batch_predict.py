"""Vectorised prediction: batch == scalar, cache interplay, amortisation."""

import numpy as np
import pytest

from repro.bench.throughput import prediction_throughput
from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.ml.registry import candidate_models

GRID = [1, 2, 4, 8, 16]


def random_shapes(n, seed=0, lo=8, hi=3000):
    rng = np.random.default_rng(seed)
    return [tuple(int(x) for x in rng.integers(lo, hi, size=3))
            for _ in range(n)]


class _OracleModel:
    """Predicts runtime = |p - target| so the argmin is known exactly."""

    def __init__(self, target):
        self.target = target

    def predict(self, X):
        return np.abs(X[:, 3] - self.target)


def _fit_on_synthetic(model, seed=0, n_rows=160):
    """Fit a registry model on a synthetic runtime surface."""
    rng = np.random.default_rng(seed)
    builder = FeatureBuilder("both")
    shapes = random_shapes(n_rows // len(GRID) + 1, seed=seed)
    X_rows, y_rows = [], []
    for m, k, n in shapes:
        X_rows.append(builder.build_for_grid(m, k, n, GRID))
        work = m * k * n / 1e9
        p = np.asarray(GRID, dtype=float)
        y_rows.append(work / p + 0.002 * p + 0.01 * rng.random(p.size))
    X = np.vstack(X_rows)[:n_rows]
    y = np.concatenate(y_rows)[:n_rows]
    model.fit(np.log1p(X), np.log1p(y))
    return builder


class _Log1pPipeline:
    def transform(self, X):
        return np.log1p(X)


class TestBatchEqualsScalar:
    def test_oracle_model_matches(self):
        predictor = ThreadPredictor(FeatureBuilder("both"), None,
                                    _OracleModel(target=8), GRID)
        shapes = random_shapes(50, seed=1)
        batch = predictor.predict_threads_batch(shapes)
        assert set(batch.tolist()) == {8}

    def test_scalar_equivalence_on_120_random_shapes(self):
        """Acceptance: bitwise-identical choices on >= 100 random shapes."""
        cand = next(c for c in candidate_models(budget="fast")
                    if c.name == "XGBoost")
        model = cand.build()
        builder = _fit_on_synthetic(model)
        shapes = random_shapes(120, seed=7)

        batch_pred = ThreadPredictor(builder, _Log1pPipeline(), model, GRID,
                                     cache_size=256)
        scalar_pred = ThreadPredictor(builder, _Log1pPipeline(), model, GRID)
        batch = batch_pred.predict_threads_batch(shapes)
        scalar = [scalar_pred.predict_threads(m, k, n) for m, k, n in shapes]
        np.testing.assert_array_equal(batch, np.asarray(scalar))

    @pytest.mark.parametrize(
        "cand", candidate_models(budget="fast", include_extra=True),
        ids=lambda c: c.name.replace(" ", "_"))
    def test_every_registered_model_matches(self, cand):
        """Property: batch == scalar shape-by-shape on every candidate."""
        model = cand.build()
        builder = _fit_on_synthetic(model, seed=3)
        predictor = ThreadPredictor(builder, None, model, GRID, cache_size=64)
        shapes = random_shapes(25, seed=11)
        batch = predictor.predict_threads_batch(shapes)
        predictor.invalidate_memo()
        scalar = [predictor.predict_threads(m, k, n) for m, k, n in shapes]
        np.testing.assert_array_equal(batch, np.asarray(scalar))

    def test_matches_trained_bundle_predictor(self, tiny_bundle):
        """Full pipeline (Yeo-Johnson/scaler/pruner) batch equivalence."""
        bundle, _ = tiny_bundle
        predictor = bundle.predictor(cache_size=256)
        shapes = random_shapes(110, seed=13, lo=8, hi=1200)
        batch = predictor.predict_threads_batch(shapes)
        predictor.invalidate_memo()
        scalar = [predictor.predict_threads(m, k, n) for m, k, n in shapes]
        np.testing.assert_array_equal(batch, np.asarray(scalar))

    def test_accepts_specs_with_dims(self):
        from repro.gemm.interface import GemmSpec

        predictor = ThreadPredictor(FeatureBuilder("both"), None,
                                    _OracleModel(4), GRID)
        specs = [GemmSpec(32, 64, 32), GemmSpec(100, 100, 100)]
        np.testing.assert_array_equal(
            predictor.predict_threads_batch(specs),
            predictor.predict_threads_batch([(32, 64, 32), (100, 100, 100)]))


class TestBatchCacheInterplay:
    @pytest.fixture
    def predictor(self):
        return ThreadPredictor(FeatureBuilder("both"), None, _OracleModel(8),
                               GRID, cache_size=32)

    def test_duplicates_evaluated_once(self, predictor):
        shapes = [(10, 10, 10), (20, 20, 20), (10, 10, 10), (20, 20, 20)]
        predictor.predict_threads_batch(shapes)
        assert predictor.n_evaluations == 2
        assert predictor.n_batch_evaluations == 1

    def test_batch_populates_cache_for_scalar_calls(self, predictor):
        predictor.predict_threads_batch([(10, 10, 10)])
        evals = predictor.n_evaluations
        predictor.predict_threads(10, 10, 10)
        assert predictor.n_evaluations == evals
        assert predictor.n_memo_hits == 1

    def test_scalar_result_reused_by_batch(self, predictor):
        predictor.predict_threads(10, 10, 10)
        predictor.predict_threads_batch([(10, 10, 10), (30, 30, 30)])
        assert predictor.n_evaluations == 2  # only the new shape

    def test_all_cached_batch_skips_model(self, predictor):
        shapes = [(10, 10, 10), (20, 20, 20)]
        predictor.predict_threads_batch(shapes)
        evals = predictor.n_evaluations
        predictor.predict_threads_batch(shapes)
        assert predictor.n_evaluations == evals
        assert predictor.n_batch_evaluations == 1

    def test_empty_batch(self, predictor):
        assert predictor.predict_threads_batch([]).size == 0


class TestAmortisation:
    def test_batch64_beats_single_call_cost(self, tiny_bundle):
        """Acceptance: amortised per-shape time at batch 64 is below the
        single-call cost (measured through the throughput harness)."""
        bundle, _ = tiny_bundle
        predictor = bundle.predictor(cache_size=1)
        rows = prediction_throughput(predictor, n_shapes=128,
                                     batch_sizes=(1, 64), repeats=3)
        by_batch = {row["batch_size"]: row for row in rows}
        assert by_batch[64]["per_shape_us"] < by_batch[1]["per_shape_us"]
        assert by_batch[64]["speedup"] > 1.0

    def test_measure_eval_time_batch_mode(self, tiny_bundle):
        bundle, _ = tiny_bundle
        predictor = bundle.predictor()
        t_scalar = predictor.measure_eval_time(repeats=3)
        t_batch = predictor.measure_eval_time(repeats=3, batch_size=64)
        assert 0 < t_batch < t_scalar
