"""ExecutionBackend protocol conformance and adapter behaviour."""

import numpy as np
import pytest

from repro.blas.adapter import RoutineSimulator
from repro.blas.syrk import SyrkSpec
from repro.engine.backend import (BackendDispatcher, ExecutionBackend,
                                  ParallelExecutionBackend, RoutineBackend,
                                  SimulatorBackend, TimedRunBackend,
                                  as_backend)
from repro.gemm.interface import GemmSpec
from repro.machine.host import HostMachine

GRID = [1, 2, 4, 8, 12, 16]


class TestAdapters:
    def test_simulator_backend_conforms(self, tiny_sim):
        backend = as_backend(tiny_sim, GRID)
        assert isinstance(backend, SimulatorBackend)
        assert isinstance(backend, ExecutionBackend)
        np.testing.assert_array_equal(backend.thread_grid, GRID)
        assert backend.name == "tiny"

    def test_simulator_backend_times_match(self, tiny_sim):
        backend = tiny_sim.backend(GRID)
        spec = GemmSpec(64, 64, 64)
        assert backend.timed_run(spec, 4, repeats=3) == pytest.approx(
            tiny_sim.timed_run(spec, 4, repeats=3))
        assert backend.true_time(spec, 4) == pytest.approx(
            tiny_sim.true_time(spec, 4))

    def test_routine_backend_conforms(self, tiny_sim):
        oracle = RoutineSimulator(tiny_sim)
        backend = as_backend(oracle, GRID)
        assert isinstance(backend, RoutineBackend)
        assert isinstance(backend, ExecutionBackend)
        assert backend.timed_run(SyrkSpec(n=64, k=32), 4, repeats=2) > 0

    def test_host_machine_wraps_generically(self):
        host = HostMachine(max_threads=4)
        backend = as_backend(host, [1, 2, 4])
        assert type(backend) is TimedRunBackend
        assert backend.timed_run(GemmSpec(16, 16, 16), 2, repeats=1) > 0

    def test_grid_derived_from_machine_when_omitted(self, tiny_sim):
        backend = as_backend(tiny_sim)
        assert backend.thread_grid.max() <= tiny_sim.max_threads()
        assert 1 in backend.thread_grid

    def test_existing_backend_passes_through(self, tiny_sim):
        backend = tiny_sim.backend(GRID)
        assert as_backend(backend) is backend

    def test_regrid_rewraps(self, tiny_sim):
        backend = tiny_sim.backend(GRID)
        regridded = as_backend(backend, [1, 2])
        assert regridded is not backend
        np.testing.assert_array_equal(regridded.thread_grid, [1, 2])

    def test_rejects_objects_without_timed_run(self):
        with pytest.raises(TypeError):
            as_backend(object())

    def test_grid_validation(self, tiny_sim):
        with pytest.raises(ValueError):
            as_backend(tiny_sim, [])
        with pytest.raises(ValueError):
            as_backend(tiny_sim, [0, 2])


class TestParallelExecutionBackend:
    def test_real_execution(self):
        backend = ParallelExecutionBackend(thread_grid=[1, 2], max_threads=2)
        assert isinstance(backend, ExecutionBackend)
        spec = GemmSpec(24, 24, 24)
        t = backend.timed_run(spec, 2, repeats=1)
        assert t > 0
        # Operands cached between calls (timing, not allocation).
        a1 = backend.pool.operands(spec)[0]
        backend.timed_run(spec, 1, repeats=1)
        assert backend.pool.operands(spec)[0] is a1
        backend.release()
        assert spec.key() not in backend.pool._operands

    def test_thread_range_enforced(self):
        backend = ParallelExecutionBackend(thread_grid=[1, 2], max_threads=2)
        with pytest.raises(ValueError):
            backend.timed_run(GemmSpec(8, 8, 8), 64, repeats=1)


class TestDispatcher:
    def test_mro_routing(self, tiny_sim):
        base = tiny_sim.backend(GRID)
        other = tiny_sim.backend([1, 2])
        dispatcher = BackendDispatcher(default=base)
        dispatcher.register(SyrkSpec, other)
        assert dispatcher.backend_for(SyrkSpec(n=8, k=8)) is other
        assert dispatcher.backend_for(GemmSpec(8, 8, 8)) is base

    def test_no_route_raises(self):
        with pytest.raises(TypeError):
            BackendDispatcher().backend_for(GemmSpec(8, 8, 8))

    def test_register_validates_type(self, tiny_sim):
        with pytest.raises(TypeError):
            BackendDispatcher().register("SyrkSpec", tiny_sim.backend(GRID))

    def test_backends_listing(self, tiny_sim):
        base = tiny_sim.backend(GRID)
        other = tiny_sim.backend([1, 2])
        dispatcher = BackendDispatcher(default=base)
        dispatcher.register(SyrkSpec, other).register(GemmSpec, other)
        assert dispatcher.backends == [base, other]
