"""PredictionCache: LRU order, statistics, invalidation."""

import pytest

from repro.engine.cache import PredictionCache


class TestLruSemantics:
    def test_evicts_least_recently_used(self):
        cache = PredictionCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.peek("b") == 2 and cache.peek("c") == 3
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = PredictionCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache

    def test_put_refreshes_recency(self):
        cache = PredictionCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not grow
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.peek("a") == 10
        assert len(cache) == 2

    def test_keys_in_recency_order(self):
        cache = PredictionCache(maxsize=3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_size_one_is_the_paper_memo(self):
        cache = PredictionCache(maxsize=1)
        cache.put((10, 10, 10), 4)
        cache.put((20, 10, 10), 8)
        assert (10, 10, 10) not in cache
        assert cache.get((20, 10, 10)) == 8

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PredictionCache(maxsize=0)


class TestStatistics:
    def test_hit_miss_counters(self):
        cache = PredictionCache(maxsize=4)
        assert cache.get("x") is None
        cache.put("x", 1)
        assert cache.get("x") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate_is_zero(self):
        assert PredictionCache().hit_rate == 0.0

    def test_peek_and_contains_do_not_count(self):
        cache = PredictionCache(maxsize=4)
        cache.put("x", 1)
        cache.peek("x")
        cache.peek("y")
        assert "x" in cache and "y" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_stats_snapshot(self):
        cache = PredictionCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats == {"size": 1, "maxsize": 2, "hits": 1, "misses": 1,
                         "evictions": 0, "hit_rate": 0.5}

    def test_reset_stats_keeps_entries(self):
        cache = PredictionCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.reset_stats()
        assert cache.hits == 0 and len(cache) == 1


class TestBulkOps:
    def test_get_many_matches_sequential_gets(self):
        cache = PredictionCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        found = cache.get_many(["a", "x", "b", "y"])
        assert found == {"a": 1, "b": 2}
        assert cache.hits == 2 and cache.misses == 2

    def test_get_many_refreshes_recency(self):
        cache = PredictionCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get_many(["a"])  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache

    def test_get_many_counts_duplicates(self):
        cache = PredictionCache(maxsize=4)
        cache.put("a", 1)
        cache.get_many(["a", "a", "z"])
        assert cache.hits == 2 and cache.misses == 1

    def test_put_many_accepts_mapping_and_pairs(self):
        cache = PredictionCache(maxsize=8)
        cache.put_many({"a": 1, "b": 2})
        cache.put_many([("c", 3), ("d", 4)])
        assert cache.peek("a") == 1 and cache.peek("d") == 4
        assert len(cache) == 4

    def test_put_many_evicts_once_at_the_end(self):
        cache = PredictionCache(maxsize=2)
        cache.put_many({"a": 1, "b": 2, "c": 3, "d": 4})
        assert cache.keys() == ["c", "d"]
        assert cache.evictions == 2

    def test_empty_bulk_ops_are_noops(self):
        cache = PredictionCache(maxsize=2)
        assert cache.get_many([]) == {}
        cache.put_many({})
        cache.put_many([])
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0


class TestInvalidate:
    def test_invalidate_all(self):
        cache = PredictionCache(maxsize=4)
        for key in "ab":
            cache.put(key, key)
        cache.get("a")
        cache.invalidate()
        assert len(cache) == 0
        assert cache.hits == 1  # statistics survive invalidation

    def test_invalidate_single_key(self):
        cache = PredictionCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        assert "a" not in cache and "b" in cache

    def test_invalidate_missing_key_is_noop(self):
        cache = PredictionCache(maxsize=4)
        cache.put("a", 1)
        cache.invalidate("zzz")
        assert len(cache) == 1
