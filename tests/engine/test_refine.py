"""The opt-in ``refine=`` hook: online refinement inside GemmService."""

import numpy as np
import pytest

from repro.core.features import FeatureBuilder
from repro.core.online import OnlineRefiner
from repro.core.predictor import ThreadPredictor
from repro.engine import GemmService, PredictionCache
from repro.gemm.interface import GemmSpec

GRID = [1, 2, 4, 8, 12, 16]


class _BiasedModel:
    """Always scores the largest thread count best (a wrong prior)."""

    def predict(self, X):
        return -X[:, 3]  # column 3 is n_threads


def _biased_predictor():
    return ThreadPredictor(FeatureBuilder("both"), None, _BiasedModel(),
                           GRID, cache=PredictionCache(maxsize=64))


class TestRefineHook:
    def test_off_by_default(self, tiny_sim):
        service = GemmService(_biased_predictor(),
                              backend=tiny_sim.backend(GRID))
        assert service.refiner is None
        assert "refine_explorations" not in service.stats()

    def test_refine_true_builds_refiner(self, tiny_sim):
        service = GemmService(_biased_predictor(),
                              backend=tiny_sim.backend(GRID), refine=True)
        assert isinstance(service.refiner, OnlineRefiner)
        assert service.refiner.predictor is service.predictor

    def test_custom_refiner_must_share_predictor(self, tiny_sim):
        with pytest.raises(ValueError):
            GemmService(_biased_predictor(), backend=tiny_sim.backend(GRID),
                        refine=OnlineRefiner(_biased_predictor()))

    def test_converges_on_mispredicted_shape(self, tiny_sim):
        """The model insists on 16 threads for a skinny GEMM; measured
        feedback through the service must walk the choice downhill."""
        predictor = _biased_predictor()
        refiner = OnlineRefiner(predictor, explore_prob=0.4, min_trials=2,
                                seed=0)
        service = GemmService(predictor, backend=tiny_sim.backend(GRID),
                              repeats=2, refine=refiner)
        spec = GemmSpec(32, 512, 32)
        for _ in range(120):
            service.run(spec)
        final = refiner.steady_choice(spec.m, spec.k, spec.n)
        assert final < 16
        assert tiny_sim.true_time(spec, final) < tiny_sim.true_time(spec, 16)
        assert service.stats()["refine_explorations"] > 0

    def test_batch_path_refines_and_keeps_one_model_pass(self, tiny_sim):
        predictor = _biased_predictor()
        service = GemmService(predictor, backend=tiny_sim.backend(GRID),
                              repeats=2, refine=True)
        specs = [GemmSpec(32, 512, 32), GemmSpec(48, 512, 48),
                 GemmSpec(32, 512, 32)]
        for _ in range(40):
            service.run_batch(specs)
        # Still exactly one vectorised pass for the two unique shapes.
        assert predictor.n_batch_evaluations == 1
        assert predictor.n_evaluations == 2
        # Measured feedback accumulated for every call.
        assert service.refiner._state_for(32, 512, 32).calls == 80
        final = service.refiner.steady_choice(32, 512, 32)
        assert tiny_sim.true_time(GemmSpec(32, 512, 32), final) <= \
            tiny_sim.true_time(GemmSpec(32, 512, 32), 16)

    def test_unrefined_service_is_unchanged(self, tiny_sim):
        """refine=None keeps the exact deterministic prediction path."""
        a = GemmService(_biased_predictor(), backend=tiny_sim.backend(GRID))
        b = GemmService(_biased_predictor(), backend=tiny_sim.backend(GRID))
        specs = [GemmSpec(32, 512, 32), GemmSpec(64, 64, 64)] * 3
        assert [r.n_threads for r in a.run_batch(specs)] == \
            [b.run(s).n_threads for s in specs]

    def test_from_bundle_refine_passthrough(self, tiny_bundle):
        bundle, sim = tiny_bundle
        with GemmService.from_bundle(bundle, sim, refine=True) as service:
            assert isinstance(service.refiner, OnlineRefiner)
            record = service.run(GemmSpec(64, 512, 64))
            assert record.n_threads in service.thread_grid
        assert service.refiner is None  # released on close
