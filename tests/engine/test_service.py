"""GemmService: dedup, batch prediction, dispatch, stats, facade parity."""

import numpy as np
import pytest

from repro.blas.adapter import RoutineSimulator
from repro.blas.gemv import GemvSpec
from repro.blas.syrk import SyrkSpec
from repro.blas.trsm import TrsmSpec
from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.engine import (BackendDispatcher, GemmService, PredictionCache,
                          SimulatorBackend)
from repro.gemm.interface import GemmSpec

GRID = [1, 2, 4, 8, 12, 16]


class _OracleModel:
    def __init__(self, target=8):
        self.target = target

    def predict(self, X):
        return np.abs(X[:, 3] - self.target)


@pytest.fixture
def service(tiny_sim):
    predictor = ThreadPredictor(FeatureBuilder("both"), None, _OracleModel(),
                                GRID, cache=PredictionCache(maxsize=64))
    return GemmService(predictor, backend=tiny_sim.backend(GRID), repeats=2)


class TestSingleCalls:
    def test_run_records_history(self, service):
        record = service.run(GemmSpec(64, 64, 64))
        assert record.n_threads == 8
        assert record.runtime > 0
        assert not record.memoised
        assert service.history == [record]

    def test_repeat_call_is_memoised(self, service):
        service.run(GemmSpec(64, 64, 64))
        record = service.run(GemmSpec(64, 64, 64))
        assert record.memoised
        assert service.memo_hit_rate == pytest.approx(0.5)

    def test_baseline_uses_grid_max(self, service, tiny_sim):
        spec = GemmSpec(48, 48, 48)
        t = service.run_baseline(spec)
        assert t == pytest.approx(tiny_sim.timed_run(spec, 16, repeats=2))

    def test_closed_service_rejects_calls(self, service):
        service.close()
        with pytest.raises(RuntimeError):
            service.run(GemmSpec(8, 8, 8))


class TestBatchServing:
    def test_records_in_input_order(self, service):
        specs = [GemmSpec(32, 32, 32), GemmSpec(64, 64, 64),
                 GemmSpec(32, 32, 32)]
        records = service.run_batch(specs)
        assert [r.spec for r in records] == specs

    def test_dedup_one_evaluation_per_unique_shape(self, service):
        specs = [GemmSpec(32, 32, 32), GemmSpec(64, 64, 64),
                 GemmSpec(32, 32, 32), GemmSpec(64, 64, 64)]
        service.run_batch(specs)
        assert service.predictor.n_evaluations == 2
        assert service.predictor.n_batch_evaluations == 1

    def test_memoised_flags(self, service):
        service.run(GemmSpec(32, 32, 32))
        records = service.run_batch(
            [GemmSpec(32, 32, 32),   # cached before the batch
             GemmSpec(64, 64, 64),   # fresh
             GemmSpec(64, 64, 64)])  # duplicate within the batch
        assert [r.memoised for r in records] == [True, False, True]

    def test_batch_then_scalar_shares_cache(self, service):
        service.run_batch([GemmSpec(32, 32, 32)])
        record = service.run(GemmSpec(32, 32, 32))
        assert record.memoised

    def test_empty_batch(self, service):
        assert service.run_batch([]) == []

    def test_stats_fields(self, service):
        service.run_batch([GemmSpec(32, 32, 32), GemmSpec(64, 64, 64),
                           GemmSpec(32, 32, 32)])
        stats = service.stats()
        assert stats["requests"] == 3
        assert stats["batches"] == 1
        assert stats["unique_shapes"] == 2
        assert stats["evaluations"] == 2
        # Cache lookups are per unique shape; the intra-batch duplicate
        # shares the batch evaluation and shows up in memo_hit_rate.
        assert stats["cache_misses"] == 2 and stats["cache_hits"] == 0
        assert stats["memo_hit_rate"] == pytest.approx(1 / 3, abs=1e-4)


class TestMultiRoutineDispatch:
    """All four routines serve through the one ExecutionBackend protocol."""

    @pytest.fixture
    def routed(self, tiny_sim):
        predictor = ThreadPredictor(FeatureBuilder("both"), None,
                                    _OracleModel(), GRID, cache_size=64)
        routines = RoutineSimulator(tiny_sim).backend(GRID)
        service = GemmService(
            predictor,
            dispatcher=BackendDispatcher(default=tiny_sim.backend(GRID)))
        for spec_type in (GemvSpec, SyrkSpec, TrsmSpec):
            service.register_backend(spec_type, routines)
        return service

    def test_all_four_routines_serve(self, routed):
        specs = [GemmSpec(64, 64, 64), GemvSpec(m=256, n=256),
                 SyrkSpec(n=64, k=32), TrsmSpec(m=64, n=32)]
        records = routed.run_batch(specs)
        assert len(records) == 4
        assert all(r.runtime > 0 for r in records)
        assert all(r.n_threads in GRID for r in records)

    def test_routing_targets(self, routed, tiny_sim):
        gemm_backend = routed.dispatcher.backend_for(GemmSpec(8, 8, 8))
        syrk_backend = routed.dispatcher.backend_for(SyrkSpec(n=8, k=8))
        assert isinstance(gemm_backend, SimulatorBackend)
        assert syrk_backend is not gemm_backend
        assert syrk_backend.machine.simulator is tiny_sim

    def test_syrk_cheaper_than_equivalent_gemm(self, routed):
        syrk = SyrkSpec(n=256, k=128)
        t_syrk = routed.run(syrk).runtime
        t_gemm = routed.run(syrk.equivalent_gemm()).runtime
        assert t_syrk < t_gemm

    def test_unregistered_type_without_default_raises(self):
        predictor = ThreadPredictor(FeatureBuilder("both"), None,
                                    _OracleModel(), GRID)
        service = GemmService(predictor, dispatcher=BackendDispatcher())
        with pytest.raises(TypeError):
            service.run(GemmSpec(8, 8, 8))


class TestConstruction:
    def test_backend_xor_dispatcher(self, tiny_sim):
        predictor = ThreadPredictor(FeatureBuilder("both"), None,
                                    _OracleModel(), GRID)
        with pytest.raises(ValueError):
            GemmService(predictor)
        with pytest.raises(ValueError):
            GemmService(predictor, backend=tiny_sim.backend(GRID),
                        dispatcher=BackendDispatcher())

    def test_from_bundle(self, tiny_bundle):
        bundle, sim = tiny_bundle
        with GemmService.from_bundle(bundle, sim, cache_size=128) as service:
            records = service.run_batch(
                [GemmSpec(32, 768, 32), GemmSpec(32, 768, 32)])
            assert records[1].memoised
            assert service.cache.maxsize == 128
            np.testing.assert_array_equal(
                service.thread_grid,
                sorted(set(bundle.config.thread_grid)))


class TestAdsalaGemmFacade:
    """The public library keeps its API while riding on the engine."""

    def test_run_batch_and_cache_stats(self, tiny_bundle):
        from repro.core.library import AdsalaGemm

        bundle, sim = tiny_bundle
        with AdsalaGemm(bundle, sim) as gemm:
            records = gemm.run_batch([GemmSpec(64, 64, 64)] * 3)
            assert len(records) == 3 and len(gemm.history) == 3
            stats = gemm.cache_stats
            assert stats["requests"] == 3
            assert stats["evaluations"] == 1  # dups share one model pass
            assert gemm.memo_hit_rate == pytest.approx(2 / 3)

    def test_real_lru_outlives_the_paper_memo(self, tiny_bundle):
        """A-B-A now hits the cache (the size-1 memo never could)."""
        from repro.core.library import AdsalaGemm

        bundle, sim = tiny_bundle
        with AdsalaGemm(bundle, sim) as gemm:
            gemm.gemm(100, 100, 100)
            gemm.gemm(200, 200, 200)
            record = gemm.gemm(100, 100, 100)
            assert record.memoised

    def test_paper_memo_mode(self, tiny_bundle):
        from repro.core.library import AdsalaGemm

        bundle, sim = tiny_bundle
        with AdsalaGemm(bundle, sim, cache_size=1) as gemm:
            gemm.gemm(100, 100, 100)
            gemm.gemm(200, 200, 200)
            record = gemm.gemm(100, 100, 100)
            assert not record.memoised
