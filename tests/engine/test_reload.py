"""GemmService hot-reload: atomic swap, counters, grid clamping."""

import numpy as np
import pytest

from repro.core.config import AdsalaConfig
from repro.core.training import TrainedBundle
from repro.engine.service import GemmService
from repro.gemm.interface import GemmSpec

GRID = [1, 2, 4, 8, 12, 16]


class OracleModel:
    """Scores ``|n_threads - target|``: argmin is always ``target``."""

    def __init__(self, target: int = 8):
        self.target = target

    def predict(self, X):
        return np.abs(X[:, 3] - self.target)


def oracle_bundle(target: int, grid=GRID, machine: str = "tiny"):
    return TrainedBundle(
        config=AdsalaConfig(machine=machine, thread_grid=list(grid),
                            model_name=f"oracle-{target}"),
        pipeline=None, model=OracleModel(target))


@pytest.fixture
def service(tiny_sim):
    return GemmService.from_bundle(oracle_bundle(8), tiny_sim,
                                   cache_size=32)


class TestReload:
    def test_swaps_predictions(self, service):
        spec = GemmSpec(64, 512, 64)
        assert service.run(spec).n_threads == 8
        info = service.reload(oracle_bundle(2))
        assert info == {"generation": 1, "model_name": "oracle-2",
                        "machine": "tiny"}
        assert service.run(spec).n_threads == 2

    def test_new_predictor_has_fresh_cache(self, service):
        spec = GemmSpec(64, 512, 64)
        service.run(spec)
        assert service.cache.stats()["size"] == 1
        service.reload(oracle_bundle(2))
        assert service.cache.stats()["size"] == 0
        assert service.cache.maxsize == 32  # capacity carried over

    def test_counters_stay_monotonic(self, service):
        specs = [GemmSpec(32 * i, 64, 64) for i in range(1, 5)]
        service.run_batch(specs)
        before = service.stats()
        service.reload(oracle_bundle(2))
        service.run_batch(specs)
        after = service.stats()
        assert after["evaluations"] == before["evaluations"] + len(specs)
        assert after["model_passes"] == before["model_passes"] + 1
        assert after["reloads"] == 1
        assert after["bundle_generation"] == 1
        assert after["model_name"] == "oracle-2"

    def test_grid_clamped_to_machine(self, service):
        service.reload(oracle_bundle(64, grid=[1, 2, 64, 128]))
        # tiny node has 16 logical CPUs: infeasible entries are dropped.
        assert service.thread_grid.max() <= 16
        assert service.run(GemmSpec(48, 48, 48)).n_threads <= 16

    def test_batch_equals_scalar_after_reload(self, service):
        service.reload(oracle_bundle(4))
        specs = [GemmSpec(24 + 8 * i, 64, 48) for i in range(12)]
        batch = [r.n_threads for r in service.run_batch(specs)]
        assert batch == [4] * len(specs)

    def test_closed_service_rejects_reload(self, service):
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.reload(oracle_bundle(2))

    def test_reload_rebuilds_refiner(self, tiny_sim):
        service = GemmService.from_bundle(oracle_bundle(8), tiny_sim,
                                          refine=True)
        old_refiner = service.refiner
        service.reload(oracle_bundle(2))
        assert service.refiner is not old_refiner
        assert service.refiner.predictor is service.predictor
        assert service.refiner.explore_prob == old_refiner.explore_prob
