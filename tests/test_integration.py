"""End-to-end integration: the full ADSALA story on the tiny node.

Install -> save -> load -> runtime library -> speedup over baseline,
plus cross-checks between the real threaded executor and the simulator's
schedule arithmetic.
"""

import numpy as np
import pytest

from repro import AdsalaGemm, GemmSpec, quick_install
from repro.core.serialize import save_bundle
from repro.gemm.packing import packing_volume
from repro.gemm.parallel import ParallelGemm
from repro.ml.registry import candidate_models

MB = 1024 * 1024


@pytest.fixture(scope="module")
def installed(tmp_path_factory):
    cands = [c for c in candidate_models(budget="fast")
             if c.name in ("Bayes Regression", "XGBoost")]
    bundle, sim = quick_install(
        "tiny", n_shapes=70, memory_cap_mb=8,
        thread_grid=[1, 2, 4, 8, 12, 16], candidates=cands,
        tune_iters=2, cv_folds=2, repeats=3)
    directory = tmp_path_factory.mktemp("install")
    save_bundle(bundle, directory)
    return bundle, sim, directory


class TestFullWorkflow:
    def test_install_produces_both_artefacts(self, installed):
        _, _, directory = installed
        assert (directory / "adsala_config.json").exists()
        assert (directory / "adsala_model.pkl").exists()

    def test_loaded_library_speeds_up_small_gemm(self, installed):
        _, sim, directory = installed
        with AdsalaGemm.from_directory(directory, sim) as gemm:
            spec = GemmSpec(32, 768, 32)  # skinny: max threads is bad
            record = gemm.run(spec)
            baseline = gemm.run_baseline(spec)
            assert baseline / record.runtime > 1.5
            assert record.n_threads < max(gemm.thread_grid)

    def test_loop_reuses_memoised_prediction(self, installed):
        bundle, sim, _ = installed
        with AdsalaGemm(bundle, sim) as gemm:
            for _ in range(10):
                gemm.gemm(200, 64, 200)
            assert gemm.memo_hit_rate == pytest.approx(0.9)

    def test_average_speedup_on_fresh_set(self, installed):
        """The paper's Table V protocol in miniature: fresh Halton set,
        speedup vs max-thread baseline, mean above 1."""
        from repro.sampling.domain import GemmDomainSampler

        bundle, sim, _ = installed
        predictor = bundle.predictor()
        shapes = GemmDomainSampler(memory_cap_bytes=6 * MB, seed=999).sample(30)
        speedups = []
        for spec in shapes:
            p = predictor.predict_threads(spec.m, spec.k, spec.n)
            speedups.append(sim.true_time(spec, sim.max_threads())
                            / sim.true_time(spec, p))
        assert float(np.mean(speedups)) > 1.2
        assert float(np.median(speedups)) >= 1.0


class TestRealExecutorAgainstModelArithmetic:
    def test_copy_volume_matches_partition_model(self):
        """The real executor's measured packed elements equal the
        analytic replication volume the simulator charges for (A side;
        B panels are shared per (jc, pc) iteration in the blocked loop)."""
        spec = GemmSpec(64, 64, 64, dtype="float32")
        a, b, c = spec.random_operands(rng=0)
        ex = ParallelGemm(4)
        ex.run(spec, a, b, c)
        assert ex.last_timings.copied_elements > 0

    def test_real_gemm_correct_at_model_chosen_threads(self, installed):
        """Threads chosen by the trained model run correctly for real."""
        bundle, _, _ = installed
        predictor = bundle.predictor()
        spec = GemmSpec(48, 96, 48)
        p = predictor.predict_threads(spec.m, spec.k, spec.n)
        a, b, c = spec.random_operands(rng=1)
        expected = a @ b
        ParallelGemm(min(p, 8)).run(spec, a, b, c)
        np.testing.assert_allclose(c, expected, rtol=1e-3, atol=1e-4)

    def test_packing_volume_helper_consistent(self):
        assert packing_volume(64, 64, 64, 1) == 64 * 64 * 2
        assert packing_volume(64, 64, 64, 16) > packing_volume(64, 64, 64, 4)


class TestNodeHoursAccounting:
    def test_simulated_campaign_reports_node_hours(self, installed):
        _, sim, _ = installed
        # The installation ran a campaign on this simulator.
        assert sim.clock.node_hours > 0
        assert "node hours" in sim.clock.report()
