"""Additional selection-module coverage: test_set_nrmse helper."""

import numpy as np
import pytest

from repro.core.config import AdsalaConfig
from repro.core.selection import test_set_nrmse as compute_test_nrmse
from repro.ml.linear import LinearRegression


class _IdentityPipeline:
    def transform(self, X):
        return X


class TestTestSetNrmse:
    def _setup(self, label_transform):
        rng = np.random.default_rng(0)
        X = rng.uniform(0.5, 2.0, size=(100, 3))
        runtimes = np.exp(X @ np.array([0.5, -0.2, 0.1]))
        config = AdsalaConfig(machine="t", label_transform=label_transform)
        model = LinearRegression().fit(X, config.transform_label(runtimes))
        return config, model, X, runtimes

    def test_log_space_evaluation(self):
        config, model, X, runtimes = self._setup("log")
        score = compute_test_nrmse(model, None, config, X, runtimes)
        # log(runtime) is exactly linear in the features here.
        assert score < 0.05

    def test_identity_space_evaluation(self):
        config, model, X, runtimes = self._setup("identity")
        score = compute_test_nrmse(model, None, config, X, runtimes)
        assert 0 <= score < 1.0

    def test_pipeline_applied(self):
        config, model, X, runtimes = self._setup("log")
        a = compute_test_nrmse(model, None, config, X, runtimes)
        b = compute_test_nrmse(model, _IdentityPipeline(), config, X, runtimes)
        assert a == pytest.approx(b)
