"""Speedup estimation and model selection."""

import numpy as np
import pytest

from repro.core.dataset import TimingDataset, TimingRecord
from repro.core.selection import (ModelSelectionReport, ModelSelectionRow,
                                  SpeedupEstimate, estimate_speedup)


class _FixedChoicePredictor:
    """Always chooses the same thread count; measures nothing."""

    def __init__(self, choice):
        self.choice = choice

    def predict_threads(self, m, k, n):
        return self.choice

    def measure_eval_time(self, shapes=None, repeats=20):
        return 1e-6


@pytest.fixture
def test_data():
    # One shape where p=2 is 4x faster than p=8 (the max measured).
    records = [
        TimingRecord(16, 16, 16, 1, 2.0),
        TimingRecord(16, 16, 16, 2, 1.0),
        TimingRecord(16, 16, 16, 8, 4.0),
        TimingRecord(128, 16, 128, 1, 10.0),
        TimingRecord(128, 16, 128, 2, 6.0),
        TimingRecord(128, 16, 128, 8, 3.0),
    ]
    return TimingDataset.from_records(records)


class TestEstimateSpeedup:
    def test_oracle_choice_gives_expected_speedups(self, test_data):
        est = estimate_speedup(_FixedChoicePredictor(2), test_data,
                               eval_time_s=0.0)
        # Shape 1: 4.0/1.0 = 4x; shape 2: 3.0/6.0 = 0.5x.
        assert est.ideal_mean == pytest.approx((4.0 + 0.5) / 2)
        assert est.ideal_aggregate == pytest.approx((4 + 3) / (1 + 6))

    def test_max_choice_is_unity(self, test_data):
        est = estimate_speedup(_FixedChoicePredictor(8), test_data,
                               eval_time_s=0.0)
        assert est.ideal_mean == pytest.approx(1.0)
        assert est.ideal_aggregate == pytest.approx(1.0)

    def test_eval_overhead_reduces_speedup(self, test_data):
        fast = estimate_speedup(_FixedChoicePredictor(2), test_data,
                                eval_time_s=0.0)
        slow = estimate_speedup(_FixedChoicePredictor(2), test_data,
                                eval_time_s=1.0)
        assert slow.estimated_mean < fast.estimated_mean
        assert slow.estimated_aggregate < fast.estimated_aggregate

    def test_nearest_grid_entry_used(self, test_data):
        """A prediction of 3 snaps to the nearest measured count (2)."""
        est = estimate_speedup(_FixedChoicePredictor(3), test_data,
                               eval_time_s=0.0)
        assert est.ideal_mean == pytest.approx((4.0 + 0.5) / 2)

    def test_eval_time_us_property(self):
        est = SpeedupEstimate(1, 1, 5e-5, 1, 1)
        assert est.eval_time_us == pytest.approx(50.0)


def _row(name, nrmse, est_mean, eval_time=1e-6):
    return ModelSelectionRow(
        name=name, nrmse=nrmse, best_params={},
        speedup=SpeedupEstimate(
            ideal_mean=est_mean, ideal_aggregate=est_mean,
            eval_time_s=eval_time, estimated_mean=est_mean,
            estimated_aggregate=est_mean))


class TestModelSelectionReport:
    def test_selects_highest_estimated_mean(self):
        report = ModelSelectionReport.select([
            _row("A", 0.5, 1.2), _row("B", 0.1, 1.5), _row("C", 0.9, 0.8)])
        assert report.selected == "B"

    def test_tie_breaks_on_eval_time(self):
        report = ModelSelectionReport.select([
            _row("slow", 0.1, 1.5, eval_time=1e-3),
            _row("fast", 0.1, 1.5, eval_time=1e-6)])
        assert report.selected == "fast"

    def test_row_lookup_and_table(self):
        report = ModelSelectionReport.select([_row("A", 0.5, 1.2)])
        assert report.row("A").nrmse == 0.5
        table = report.as_table()
        assert table[0]["model"] == "A"
        with pytest.raises(KeyError):
            report.row("Z")

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            ModelSelectionReport.select([])
