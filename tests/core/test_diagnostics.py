"""Thread-choice diagnostics."""

import numpy as np
import pytest

from repro.core.diagnostics import diagnose_choices
from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.sampling.domain import GemmDomainSampler

MB = 1024 * 1024


class _OracleLikePredictor:
    """Wraps the simulator itself: always chooses the true best."""

    def __init__(self, sim, grid):
        self.sim = sim
        self.thread_grid = np.asarray(grid)

    def predict_threads(self, m, k, n):
        from repro.gemm.interface import GemmSpec

        return self.sim.optimal_threads(GemmSpec(m, k, n), list(self.thread_grid))


class _WorstPredictor:
    def __init__(self, sim, grid):
        self.sim = sim
        self.thread_grid = np.asarray(grid)

    def predict_threads(self, m, k, n):
        from repro.gemm.interface import GemmSpec

        spec = GemmSpec(m, k, n)
        return max(self.thread_grid,
                   key=lambda p: self.sim.true_time(spec, int(p)))


@pytest.fixture
def shapes():
    return GemmDomainSampler(memory_cap_bytes=8 * MB, seed=5).sample(15)


class TestDiagnostics:
    def test_oracle_predictor_perfect(self, tiny_sim, tiny_grid, shapes):
        diag = diagnose_choices(_OracleLikePredictor(tiny_sim, tiny_grid),
                                tiny_sim, shapes, thread_grid=tiny_grid)
        assert diag.top1_accuracy == 1.0
        assert diag.mean_regret == pytest.approx(1.0)
        assert diag.within_one_step == 1.0

    def test_worst_predictor_high_regret(self, tiny_sim, tiny_grid, shapes):
        diag = diagnose_choices(_WorstPredictor(tiny_sim, tiny_grid),
                                tiny_sim, shapes, thread_grid=tiny_grid)
        assert diag.top1_accuracy < 0.5
        assert diag.mean_regret > 1.5

    def test_trained_predictor_reasonable(self, tiny_bundle, shapes):
        bundle, sim = tiny_bundle
        diag = diagnose_choices(bundle.predictor(), sim, shapes)
        assert diag.mean_regret < 3.0
        assert diag.within_one_step > 0.4
        assert 1.0 <= diag.median_regret <= diag.p95_regret + 1e-12

    def test_buckets_cover_sample(self, tiny_sim, tiny_grid, shapes):
        diag = diagnose_choices(_OracleLikePredictor(tiny_sim, tiny_grid),
                                tiny_sim, shapes, thread_grid=tiny_grid,
                                bucket_edges_mb=(0, 2, 8))
        assert sum(b.n for b in diag.by_bucket) == len(shapes)
        for b in diag.by_bucket:
            assert b.mean_regret >= 1.0

    def test_as_dict_keys(self, tiny_sim, tiny_grid, shapes):
        diag = diagnose_choices(_OracleLikePredictor(tiny_sim, tiny_grid),
                                tiny_sim, shapes, thread_grid=tiny_grid)
        assert set(diag.as_dict()) == {"n_shapes", "top1_accuracy",
                                       "within_one_step", "mean_regret",
                                       "median_regret", "p95_regret"}

    def test_empty_grid_rejected(self, tiny_sim, shapes, tiny_bundle):
        bundle, _ = tiny_bundle
        with pytest.raises(ValueError):
            diagnose_choices(bundle.predictor(), tiny_sim, shapes,
                             thread_grid=[])
