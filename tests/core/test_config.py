"""AdsalaConfig round-trips and label transforms."""

import numpy as np
import pytest

from repro.core.config import AdsalaConfig


class TestConfig:
    def test_json_round_trip(self, tmp_path):
        cfg = AdsalaConfig(machine="gadi", thread_grid=[1, 2, 4],
                           model_name="XGBoost", memory_cap_bytes=100,
                           model_params={"max_depth": 6})
        path = tmp_path / "cfg.json"
        cfg.save(path)
        loaded = AdsalaConfig.load(path)
        assert loaded == cfg

    def test_thread_grid_coerced_to_ints(self):
        cfg = AdsalaConfig(machine="t", thread_grid=[1.0, 2.0])
        assert cfg.thread_grid == [1, 2]
        assert all(isinstance(t, int) for t in cfg.thread_grid)

    @pytest.mark.parametrize("transform", ["log", "sqrt", "identity"])
    def test_label_round_trip(self, transform):
        cfg = AdsalaConfig(machine="t", label_transform=transform)
        runtimes = np.array([1e-6, 1e-3, 1.0, 10.0])
        np.testing.assert_allclose(cfg.inverse_label(cfg.transform_label(runtimes)),
                                   runtimes, rtol=1e-12)

    def test_log_transform_values(self):
        cfg = AdsalaConfig(machine="t", label_transform="log")
        assert cfg.transform_label(np.e) == pytest.approx(1.0)

    def test_monotone_transforms_preserve_argmin(self):
        runtimes = np.array([3.0, 0.5, 2.0, 8.0])
        for transform in ("log", "sqrt", "identity"):
            cfg = AdsalaConfig(machine="t", label_transform=transform)
            assert np.argmin(cfg.transform_label(runtimes)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdsalaConfig(machine="t", label_transform="cbrt")
        with pytest.raises(ValueError):
            AdsalaConfig(machine="t", dtype="int8")
        with pytest.raises(ValueError):
            AdsalaConfig(machine="t", thread_grid=[0, 1])
