"""Bundle persistence hardening: manifests, checksums, legacy compat."""

import json
import os
import pickle

import pytest

from repro.core.serialize import (CONFIG_FILENAME, MANIFEST_FILENAME,
                                  MODEL_FILENAME, PLAN_FILENAME,
                                  SCHEMA_VERSION, BundleIntegrityError,
                                  BundleSchemaError, bundle_checksum,
                                  load_bundle, save_bundle)


@pytest.fixture
def saved(tiny_bundle, tmp_path):
    bundle, _ = tiny_bundle
    directory = tmp_path / "install"
    manifest = save_bundle(bundle, directory)
    return bundle, directory, manifest


class TestManifest:
    def test_save_writes_schema_and_checksums(self, saved):
        _, directory, manifest = saved
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert set(manifest["files"]) == {CONFIG_FILENAME, MODEL_FILENAME,
                                          PLAN_FILENAME}
        assert manifest["checksum"] == bundle_checksum(directory)
        on_disk = json.loads((directory / MANIFEST_FILENAME).read_text())
        assert on_disk == manifest

    def test_checksum_is_content_derived(self, saved, tmp_path):
        bundle, directory, _ = saved
        save_bundle(bundle, tmp_path / "again")
        assert bundle_checksum(directory) \
            == bundle_checksum(tmp_path / "again")


class TestVerification:
    def test_clean_bundle_loads(self, saved):
        bundle, directory, _ = saved
        loaded = load_bundle(directory)
        assert loaded.config == bundle.config

    def test_truncated_pickle_fails_loudly(self, saved):
        _, directory, _ = saved
        model_path = directory / MODEL_FILENAME
        model_path.write_bytes(model_path.read_bytes()[:64])
        with pytest.raises(BundleIntegrityError, match="corrupt"):
            load_bundle(directory)

    def test_flipped_config_byte_fails_loudly(self, saved):
        _, directory, _ = saved
        config_path = directory / CONFIG_FILENAME
        config_path.write_text(config_path.read_text().replace(
            '"tiny"', '"scam"'))
        with pytest.raises(BundleIntegrityError, match="does not match"):
            load_bundle(directory)

    def test_future_schema_is_refused(self, saved):
        _, directory, manifest = saved
        manifest["schema_version"] = SCHEMA_VERSION + 1
        (directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(BundleSchemaError, match="schema"):
            load_bundle(directory)

    def test_verify_false_skips_checksums(self, saved):
        bundle, directory, _ = saved
        config_path = directory / CONFIG_FILENAME
        config_path.write_text(config_path.read_text() + "\n")
        loaded = load_bundle(directory, verify=False)
        assert loaded.config == bundle.config

    def test_malformed_payload_wrapped(self, saved):
        from repro.core.serialize import _sha256_file, load_manifest

        _, directory, _ = saved
        (directory / MODEL_FILENAME).write_bytes(
            pickle.dumps({"pipeline": None}))  # missing "model" key
        # Make the manifest match so only the *payload shape* is wrong.
        manifest = load_manifest(directory)
        manifest["files"][MODEL_FILENAME] = _sha256_file(
            os.path.join(directory, MODEL_FILENAME))
        (directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(BundleIntegrityError, match="unpickle"):
            load_bundle(directory)


class TestLegacyCompat:
    def test_pre_registry_directory_still_loads(self, saved):
        """Bundles written before the manifest existed load unchanged."""
        bundle, directory, _ = saved
        os.remove(directory / MANIFEST_FILENAME)
        loaded = load_bundle(directory)
        assert loaded.config == bundle.config
        assert loaded.predictor().predict_threads(64, 64, 64) \
            == bundle.predictor().predict_threads(64, 64, 64)

    def test_missing_artefacts_still_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "nowhere")
