"""ThreadPredictor: argmin selection and memoisation."""

import numpy as np
import pytest

from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor


class _OracleModel:
    """Predicts runtime = |p - target| so the argmin is known exactly."""

    def __init__(self, target):
        self.target = target

    def predict(self, X):
        # Feature column 3 of the 'both'/'group1' layout is n_threads.
        return np.abs(X[:, 3] - self.target)


@pytest.fixture
def predictor():
    return ThreadPredictor(FeatureBuilder("both"), pipeline=None,
                           model=_OracleModel(target=8),
                           thread_grid=[1, 2, 4, 8, 16])


class TestPrediction:
    def test_picks_argmin_thread(self, predictor):
        assert predictor.predict_threads(64, 64, 64) == 8

    def test_grid_sorted_and_deduped(self):
        p = ThreadPredictor(FeatureBuilder("both"), None, _OracleModel(4),
                            thread_grid=[16, 4, 4, 1])
        np.testing.assert_array_equal(p.thread_grid, [1, 4, 16])

    def test_predicted_runtimes_shape(self, predictor):
        scores = predictor.predicted_runtimes(32, 32, 32)
        assert scores.shape == (5,)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ThreadPredictor(FeatureBuilder("both"), None, _OracleModel(1), [])


class TestMemoisation:
    def test_repeat_call_hits_memo(self, predictor):
        predictor.predict_threads(10, 10, 10)
        evals_before = predictor.n_evaluations
        predictor.predict_threads(10, 10, 10)
        assert predictor.n_evaluations == evals_before
        assert predictor.n_memo_hits == 1

    def test_different_shape_re_evaluates(self, predictor):
        predictor.predict_threads(10, 10, 10)
        predictor.predict_threads(20, 10, 10)
        assert predictor.n_evaluations == 2
        assert predictor.n_memo_hits == 0

    def test_only_last_call_remembered(self, predictor):
        """The paper memoises just the previous input, not a full cache."""
        predictor.predict_threads(10, 10, 10)
        predictor.predict_threads(20, 10, 10)
        predictor.predict_threads(10, 10, 10)  # not the previous call
        assert predictor.n_evaluations == 3

    def test_invalidate(self, predictor):
        predictor.predict_threads(10, 10, 10)
        predictor.invalidate_memo()
        predictor.predict_threads(10, 10, 10)
        assert predictor.n_evaluations == 2


class TestEvalTime:
    def test_positive_and_stable(self, predictor):
        t = predictor.measure_eval_time(repeats=5)
        assert t > 0
        assert t < 1.0  # a single predict is far below a second

    def test_repeats_validation(self, predictor):
        with pytest.raises(ValueError):
            predictor.measure_eval_time(repeats=0)

    def test_pipeline_applied(self):
        """A pipeline that rescales the thread feature changes the argmin."""

        class NegatePipeline:
            def transform(self, X):
                out = X.copy()
                out[:, 3] = -out[:, 3]
                return out

        p = ThreadPredictor(FeatureBuilder("both"), NegatePipeline(),
                            _OracleModel(target=-16), thread_grid=[1, 4, 16])
        assert p.predict_threads(8, 8, 8) == 16
