"""Double-precision (DGEMM) support through the whole workflow."""

import numpy as np
import pytest

from repro.core.training import InstallationWorkflow
from repro.gemm.interface import GemmSpec
from repro.machine.noise import QUIET
from repro.machine.presets import tiny_test_node
from repro.machine.simulator import MachineSimulator
from repro.ml.registry import candidate_models

MB = 1024 * 1024


class TestDgemmWorkflow:
    @pytest.fixture(scope="class")
    def dgemm_bundle(self):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        cands = [c for c in candidate_models(budget="fast")
                 if c.name == "XGBoost"]
        workflow = InstallationWorkflow(
            sim, memory_cap_bytes=8 * MB, n_shapes=40,
            thread_grid=[1, 2, 4, 8, 16], candidates=cands,
            tune_iters=1, cv_folds=2, repeats=3, seed=0, dtype="float64")
        return workflow.run(), sim

    def test_config_records_dtype(self, dgemm_bundle):
        bundle, _ = dgemm_bundle
        assert bundle.config.dtype == "float64"

    def test_predictor_usable(self, dgemm_bundle):
        bundle, sim = dgemm_bundle
        p = bundle.predictor().predict_threads(64, 256, 64)
        assert p in [1, 2, 4, 8, 16]

    def test_dgemm_slower_than_sgemm_in_campaign(self):
        """The simulator charges double-precision work at half peak."""
        sim = MachineSimulator(tiny_test_node(), noise=QUIET)
        s32 = GemmSpec(400, 400, 400, dtype="float32")
        s64 = GemmSpec(400, 400, 400, dtype="float64")
        assert sim.true_time(s64, 4) > 1.4 * sim.true_time(s32, 4)

    def test_invalid_dtype_rejected(self):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        with pytest.raises(ValueError):
            InstallationWorkflow(sim, memory_cap_bytes=MB, dtype="float16")
