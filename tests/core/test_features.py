"""Table II feature engineering."""

import numpy as np
import pytest

from repro.core.features import (FEATURE_NAMES_GROUP1, FEATURE_NAMES_GROUP2,
                                 FeatureBuilder)


class TestFeatureNames:
    def test_group_sizes_match_table2(self):
        # Table II lists 9 serial-term features and 8 parallel-term ones.
        assert len(FEATURE_NAMES_GROUP1) == 9
        assert len(FEATURE_NAMES_GROUP2) == 8

    def test_both_is_concatenation(self):
        fb = FeatureBuilder("both")
        assert fb.names == FEATURE_NAMES_GROUP1 + FEATURE_NAMES_GROUP2
        assert fb.n_features == 17


class TestBuild:
    def test_known_values(self):
        fb = FeatureBuilder("both")
        X = fb.build([2], [3], [5], [4])
        row = dict(zip(fb.names, X[0]))
        assert row["m"] == 2 and row["k"] == 3 and row["n"] == 5
        assert row["n_threads"] == 4
        assert row["m*k"] == 6 and row["k*n"] == 15 and row["m*n"] == 10
        assert row["m*k*n"] == 30
        assert row["m*k+k*n+m*n"] == 31
        assert row["m/p"] == 0.5
        assert row["m*k*n/p"] == 7.5
        assert row["(m*k+k*n+m*n)/p"] == 31 / 4

    def test_broadcasting_scalar_shape_vector_threads(self):
        fb = FeatureBuilder("both")
        X = fb.build(8, 8, 8, [1, 2, 4])
        assert X.shape == (3, 17)
        # Group 1 identical across rows, group 2 varies.
        np.testing.assert_array_equal(X[0, :3], X[2, :3])
        assert X[0, 9] != X[2, 9]

    def test_group_selections(self):
        assert FeatureBuilder("group1").build([2], [2], [2], [2]).shape == (1, 9)
        assert FeatureBuilder("group2").build([2], [2], [2], [2]).shape == (1, 8)
        assert FeatureBuilder("raw").build([2], [2], [2], [2]).shape == (1, 4)

    def test_build_for_grid(self):
        fb = FeatureBuilder("both")
        X = fb.build_for_grid(64, 128, 32, [1, 2, 4, 8])
        assert X.shape == (4, 17)
        np.testing.assert_array_equal(X[:, 3], [1, 2, 4, 8])

    def test_validation(self):
        fb = FeatureBuilder("both")
        with pytest.raises(ValueError):
            fb.build([0], [1], [1], [1])
        with pytest.raises(ValueError):
            fb.build([1], [1], [1], [0])
        with pytest.raises(ValueError):
            fb.build_for_grid(2, 2, 2, [])
        with pytest.raises(ValueError):
            FeatureBuilder("polynomial")

    def test_config_round_trip(self):
        fb = FeatureBuilder("group1")
        assert FeatureBuilder.from_config(fb.config()).groups == "group1"
