"""Data gathering campaigns."""

import numpy as np
import pytest

from repro.core.gather import DataGatherer
from repro.gemm.interface import GemmSpec

MB = 1024 * 1024


class TestGatherer:
    def test_rows_are_shapes_times_grid(self, tiny_sim, tiny_grid):
        gatherer = DataGatherer(tiny_sim, thread_grid=tiny_grid, repeats=2)
        data = gatherer.gather(n_shapes=10, memory_cap_bytes=16 * MB, seed=0)
        assert len(data) == 10 * len(tiny_grid)
        assert set(np.unique(data.threads)) == set(tiny_grid)

    def test_default_grid_from_machine(self, tiny_sim):
        gatherer = DataGatherer(tiny_sim)
        assert max(gatherer.thread_grid) == tiny_sim.max_threads()

    def test_grid_exceeding_machine_rejected(self, tiny_sim):
        with pytest.raises(ValueError, match="capacity"):
            DataGatherer(tiny_sim, thread_grid=[1, 1000])

    def test_deterministic(self, tiny_sim, tiny_grid):
        from repro.machine.presets import tiny_test_node
        from repro.machine.simulator import MachineSimulator

        a = DataGatherer(MachineSimulator(tiny_test_node(), seed=0),
                         thread_grid=tiny_grid, repeats=2) \
            .gather(5, 16 * MB, seed=0)
        b = DataGatherer(MachineSimulator(tiny_test_node(), seed=0),
                         thread_grid=tiny_grid, repeats=2) \
            .gather(5, 16 * MB, seed=0)
        np.testing.assert_array_equal(a.runtime, b.runtime)

    def test_sharding_partitions_shapes(self, tiny_sim, tiny_grid):
        specs = [GemmSpec(16 * (i + 1), 16, 16) for i in range(6)]
        gatherer = DataGatherer(tiny_sim, thread_grid=tiny_grid, repeats=1)
        shard0 = gatherer.gather_for_specs(specs, shard=0, n_shards=2)
        shard1 = gatherer.gather_for_specs(specs, shard=1, n_shards=2)
        merged = shard0.merge(shard1)
        assert len(merged) == len(specs) * len(tiny_grid)
        # No shape appears in both shards.
        s0 = {tuple(s) for s in shard0.unique_shapes()}
        s1 = {tuple(s) for s in shard1.unique_shapes()}
        assert not (s0 & s1)

    def test_invalid_shard_rejected(self, tiny_sim):
        gatherer = DataGatherer(tiny_sim, thread_grid=[1, 2])
        with pytest.raises(ValueError):
            gatherer.gather_for_specs([GemmSpec(8, 8, 8)], shard=2, n_shards=2)

    def test_node_hours_accumulate(self, tiny_sim, tiny_grid):
        gatherer = DataGatherer(tiny_sim, thread_grid=tiny_grid, repeats=2)
        gatherer.gather(n_shapes=3, memory_cap_bytes=16 * MB, seed=0)
        assert gatherer.node_hours() > 0

    def test_labels_reflect_cost_model_ordering(self, tiny_sim, tiny_grid):
        """For a tiny GEMM the gathered runtime at max threads should
        exceed the single-thread runtime (the Fig. 1 phenomenon)."""
        spec = GemmSpec(32, 512, 32)
        gatherer = DataGatherer(tiny_sim, thread_grid=tiny_grid, repeats=3)
        data = gatherer.gather_for_specs([spec])
        rt = {int(t): r for t, r in zip(data.threads, data.runtime)}
        assert rt[16] > rt[1]
