"""TimingDataset container semantics."""

import numpy as np
import pytest

from repro.core.dataset import TimingDataset, TimingRecord


@pytest.fixture
def small_dataset():
    # Two shapes x three thread counts, runtimes minimised at p=2 and p=4.
    records = [
        TimingRecord(8, 8, 8, 1, 1.0),
        TimingRecord(8, 8, 8, 2, 0.4),
        TimingRecord(8, 8, 8, 4, 0.9),
        TimingRecord(64, 16, 64, 1, 5.0),
        TimingRecord(64, 16, 64, 2, 3.0),
        TimingRecord(64, 16, 64, 4, 2.0),
    ]
    return TimingDataset.from_records(records)


class TestConstruction:
    def test_from_records_round_trip(self, small_dataset):
        records = small_dataset.records()
        assert len(records) == 6
        assert records[0] == TimingRecord(8, 8, 8, 1, 1.0)

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError):
            TimingDataset([1], [1, 2], [1], [1], [1.0])

    def test_nonpositive_runtime_rejected(self):
        with pytest.raises(ValueError):
            TimingDataset([1], [1], [1], [1], [0.0])

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            TimingDataset.from_records([])


class TestDerivedColumns:
    def test_memory_formula(self, small_dataset):
        expected = 4 * (8 * 8 * 3)
        assert small_dataset.memory_bytes[0] == expected

    def test_spec_accessor(self):
        rec = TimingRecord(3, 4, 5, 2, 0.1)
        assert rec.spec.dims == (3, 4, 5)


class TestFilters:
    def test_within_memory(self, small_dataset):
        small = small_dataset.within_memory(4 * (8 * 8 * 3))
        assert len(small) == 3
        assert (small.m == 8).all()

    def test_min_dim_below(self, small_dataset):
        filtered = small_dataset.min_dim_below(50)
        assert len(filtered) == 6  # both shapes have a dim < 50
        assert len(small_dataset.min_dim_below(9)) == 3

    def test_select_mask(self, small_dataset):
        sel = small_dataset.select(small_dataset.threads == 2)
        assert len(sel) == 2


class TestOptimalThreads:
    def test_argmin_per_shape(self, small_dataset):
        shapes, best_t, best_rt, max_rt = small_dataset.optimal_threads()
        assert shapes.shape == (2, 3)
        lookup = {tuple(s): (t, rt, mx) for s, t, rt, mx in
                  zip(shapes, best_t, best_rt, max_rt)}
        assert lookup[(8, 8, 8)] == (2, 0.4, 0.9)     # max-thread rt at p=4
        assert lookup[(64, 16, 64)] == (4, 2.0, 2.0)

    def test_unique_shapes_sorted(self, small_dataset):
        shapes = small_dataset.unique_shapes()
        assert shapes.shape[0] == 2


class TestPersistence:
    def test_json_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "data.json"
        small_dataset.save(path)
        loaded = TimingDataset.load(path)
        np.testing.assert_array_equal(loaded.m, small_dataset.m)
        np.testing.assert_array_equal(loaded.runtime, small_dataset.runtime)
        assert loaded.dtype == small_dataset.dtype

    def test_merge(self, small_dataset):
        merged = small_dataset.merge(small_dataset)
        assert len(merged) == 12

    def test_merge_dtype_mismatch(self, small_dataset):
        other = TimingDataset([1], [1], [1], [1], [1.0], dtype="float64")
        with pytest.raises(ValueError):
            small_dataset.merge(other)
