"""Online refinement of thread choices."""

import numpy as np
import pytest

from repro.core.features import FeatureBuilder
from repro.core.online import OnlineRefiner
from repro.core.predictor import ThreadPredictor
from repro.gemm.interface import GemmSpec


class _BiasedModel:
    """Always scores the largest thread count best (a wrong prior)."""

    def predict(self, X):
        return -X[:, 3]  # column 3 is n_threads


@pytest.fixture
def biased_predictor():
    return ThreadPredictor(FeatureBuilder("both"), None, _BiasedModel(),
                           thread_grid=[1, 2, 4, 8, 16])


class TestOnlineRefiner:
    def test_starts_from_model_choice(self, biased_predictor):
        refiner = OnlineRefiner(biased_predictor, seed=0)
        assert refiner.choose_threads(32, 512, 32) == 16

    def test_corrects_wrong_prior(self, biased_predictor, tiny_sim):
        """The biased model says 16 threads; for a skinny GEMM the truth
        is far fewer.  After enough calls the refiner walks downhill."""
        refiner = OnlineRefiner(biased_predictor, explore_prob=0.4,
                                min_trials=2, seed=0)
        spec = GemmSpec(32, 512, 32)
        for _ in range(120):
            refiner.run(spec, tiny_sim, repeats=2)
        final = refiner.steady_choice(spec.m, spec.k, spec.n)
        assert final < 16
        # And the steady choice is genuinely faster than the prior.
        assert tiny_sim.true_time(spec, final) < tiny_sim.true_time(spec, 16)

    def test_keeps_correct_prior(self, tiny_bundle):
        """With a good model and a well-behaved shape, refinement should
        not wander away from a near-optimal choice."""
        bundle, sim = tiny_bundle
        refiner = OnlineRefiner(bundle.predictor(), explore_prob=0.2,
                                min_trials=2, seed=0)
        spec = GemmSpec(1500, 1500, 1500)
        prior = refiner.choose_threads(spec.m, spec.k, spec.n)
        for _ in range(60):
            refiner.run(spec, sim, repeats=2)
        final = refiner.steady_choice(spec.m, spec.k, spec.n)
        t_prior = sim.true_time(spec, prior)
        t_final = sim.true_time(spec, final)
        assert t_final <= t_prior * 1.2

    def test_exploration_bounded_to_neighbours(self, biased_predictor, tiny_sim):
        refiner = OnlineRefiner(biased_predictor, explore_prob=0.9,
                                min_trials=1, seed=0)
        spec = GemmSpec(64, 64, 64)
        seen = set()
        for _ in range(40):
            t, _rt = refiner.run(spec, tiny_sim)
            seen.add(t)
        # From a 16-thread prior only 8 and 16 are reachable in one hop;
        # further hops happen only after the best-known point moves.
        assert seen <= {1, 2, 4, 8, 16}

    def test_record_validation(self, biased_predictor):
        refiner = OnlineRefiner(biased_predictor)
        with pytest.raises(ValueError):
            refiner.record(8, 8, 8, 4, -1.0)

    def test_constructor_validation(self, biased_predictor):
        with pytest.raises(ValueError):
            OnlineRefiner(biased_predictor, explore_prob=1.0)
        with pytest.raises(ValueError):
            OnlineRefiner(biased_predictor, min_trials=0)

    def test_exploration_counter(self, biased_predictor, tiny_sim):
        refiner = OnlineRefiner(biased_predictor, explore_prob=0.5,
                                min_trials=1, seed=0)
        spec = GemmSpec(100, 100, 100)
        for _ in range(30):
            refiner.run(spec, tiny_sim)
        assert refiner.n_explorations > 0
