"""Installation workflow end-to-end and the runtime library."""

import numpy as np
import pytest

from repro.core.library import AdsalaGemm
from repro.core.serialize import load_bundle, save_bundle
from repro.gemm.interface import GemmSpec


class TestInstallationWorkflow:
    def test_bundle_contents(self, tiny_bundle):
        bundle, _ = tiny_bundle
        assert bundle.config.model_name in ("Linear Regression", "XGBoost")
        assert bundle.config.machine == "tiny"
        assert bundle.pipeline is not None
        assert len(bundle.report.rows) == 2

    def test_report_metrics_sane(self, tiny_bundle):
        bundle, _ = tiny_bundle
        for row in bundle.report.rows:
            assert row.nrmse >= 0
            assert row.speedup.eval_time_s > 0
            assert row.speedup.estimated_mean <= row.speedup.ideal_mean + 1e-9

    def test_xgboost_more_accurate_than_linear(self, tiny_bundle):
        """The Tables III/IV ordering: tree ensemble beats linear."""
        bundle, _ = tiny_bundle
        nrmse = {r.name: r.nrmse for r in bundle.report.rows}
        assert nrmse["XGBoost"] < nrmse["Linear Regression"]

    def test_predictor_beats_max_threads_on_average(self, tiny_bundle):
        """The paper's core claim at micro scale: ML thread choice
        beats always-max on fresh shapes."""
        from repro.sampling.domain import GemmDomainSampler

        bundle, sim = tiny_bundle
        predictor = bundle.predictor()
        shapes = GemmDomainSampler(memory_cap_bytes=6 * 2 ** 20,
                                   seed=777).sample(25)
        speedups = []
        for spec in shapes:
            p = predictor.predict_threads(spec.m, spec.k, spec.n)
            t_ml = sim.true_time(spec, p)
            t_max = sim.true_time(spec, sim.max_threads())
            speedups.append(t_max / t_ml)
        assert float(np.mean(speedups)) > 1.2

    def test_split_keeps_shapes_disjoint(self, tiny_sim, tiny_dataset):
        from repro.core.training import InstallationWorkflow

        workflow = InstallationWorkflow(tiny_sim, memory_cap_bytes=64 * 2 ** 20,
                                        thread_grid=[1, 2, 4, 8, 12, 16])
        train, test = workflow.split_shapes(tiny_dataset)
        train_shapes = {tuple(s) for s in train.unique_shapes()}
        test_shapes = {tuple(s) for s in test.unique_shapes()}
        assert not (train_shapes & test_shapes)
        assert len(train) + len(test) == len(tiny_dataset)
        # Roughly the requested 30% of shapes in test.
        frac = len(test_shapes) / (len(test_shapes) + len(train_shapes))
        assert 0.2 < frac < 0.4


class TestSerialization:
    def test_save_load_round_trip(self, tiny_bundle, tmp_path):
        bundle, _ = tiny_bundle
        save_bundle(bundle, tmp_path / "install")
        loaded = load_bundle(tmp_path / "install")
        assert loaded.config == bundle.config
        # Loaded predictor behaves identically.
        a = bundle.predictor().predict_threads(100, 100, 100)
        b = loaded.predictor().predict_threads(100, 100, 100)
        assert a == b

    def test_missing_artefacts_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "nowhere")


class TestAdsalaGemm:
    def test_run_records_history(self, tiny_bundle):
        bundle, sim = tiny_bundle
        with AdsalaGemm(bundle, sim) as g:
            rec = g.gemm(64, 64, 64)
            assert rec.n_threads in g.thread_grid
            assert rec.runtime > 0
            assert rec.gflops > 0
            assert len(g.history) == 1

    def test_memoisation_visible_in_records(self, tiny_bundle):
        bundle, sim = tiny_bundle
        with AdsalaGemm(bundle, sim) as g:
            first = g.gemm(32, 32, 32)
            second = g.gemm(32, 32, 32)
        assert not first.memoised
        assert second.memoised
        assert g.memo_hit_rate == 0.5

    def test_baseline_uses_max_threads(self, tiny_bundle):
        bundle, sim = tiny_bundle
        g = AdsalaGemm(bundle, sim)
        spec = GemmSpec(32, 512, 32)
        t_base = g.run_baseline(spec)
        t_one = g.run_baseline(spec, n_threads=1)
        assert t_base > t_one  # tiny GEMM: max threads is slow

    def test_speedup_over_baseline_positive(self, tiny_bundle):
        bundle, sim = tiny_bundle
        g = AdsalaGemm(bundle, sim)
        assert g.speedup_over_baseline(GemmSpec(32, 512, 32)) > 0

    def test_closed_instance_rejects_calls(self, tiny_bundle):
        bundle, sim = tiny_bundle
        g = AdsalaGemm(bundle, sim)
        g.close()
        with pytest.raises(RuntimeError, match="closed"):
            g.gemm(8, 8, 8)

    def test_from_directory(self, tiny_bundle, tmp_path):
        bundle, sim = tiny_bundle
        save_bundle(bundle, tmp_path / "inst")
        with AdsalaGemm.from_directory(tmp_path / "inst", sim) as g:
            assert g.gemm(16, 16, 16).runtime > 0
