"""The future-work extension: SYRK and GEMV thread selection."""

import numpy as np
import pytest

from repro.blas.adapter import RoutineSimulator, install_for_routine
from repro.blas.gemv import GemvSpec, gemv_reference
from repro.blas.syrk import SyrkSpec, syrk_reference
from repro.machine.noise import QUIET
from repro.machine.presets import tiny_test_node
from repro.machine.simulator import MachineSimulator
from repro.ml.registry import candidate_models


class TestSyrkSpec:
    def test_flops_half_of_gemm(self):
        spec = SyrkSpec(n=1000, k=200)
        gemm = spec.equivalent_gemm()
        assert spec.flops < 0.55 * gemm.flops
        assert spec.work_fraction == pytest.approx(0.5, abs=0.01)

    def test_reference_correct_lower(self, rng):
        spec = SyrkSpec(n=6, k=4, dtype="float64", alpha=2.0, beta=0.5)
        a = rng.standard_normal((6, 4))
        c0 = rng.standard_normal((6, 6))
        c = c0.copy()
        syrk_reference(spec, a, c)
        expected = 2.0 * a @ a.T + 0.5 * c0
        tri = np.tril_indices(6)
        np.testing.assert_allclose(c[tri], expected[tri], rtol=1e-12)
        # Upper triangle (strictly) untouched.
        upper = np.triu_indices(6, k=1)
        np.testing.assert_array_equal(c[upper], c0[upper])

    def test_reference_upper_mode(self, rng):
        spec = SyrkSpec(n=4, k=3, dtype="float64", lower=False)
        a = rng.standard_normal((4, 3))
        c = np.zeros((4, 4))
        syrk_reference(spec, a, c)
        assert c[1, 0] == 0.0 and c[0, 1] != 0.0

    def test_shape_validation(self, rng):
        spec = SyrkSpec(n=4, k=3)
        with pytest.raises(ValueError):
            syrk_reference(spec, np.zeros((3, 4), dtype=np.float32),
                           np.zeros((4, 4), dtype=np.float32))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyrkSpec(n=0, k=1)


class TestGemvSpec:
    def test_reference_correct(self, rng):
        spec = GemvSpec(m=5, n=3, dtype="float64", alpha=1.5, beta=-1.0)
        a = rng.standard_normal((5, 3))
        x = rng.standard_normal(3)
        y0 = rng.standard_normal(5)
        y = y0.copy()
        gemv_reference(spec, a, x, y)
        np.testing.assert_allclose(y, 1.5 * a @ x - y0, rtol=1e-12)

    def test_memory_bound_character(self):
        """GEMV's equivalent GEMM has n=1: the cost model should show
        thread saturation far below the core count."""
        sim = RoutineSimulator(MachineSimulator(tiny_test_node(), noise=QUIET))
        spec = GemvSpec(m=4000, n=4000)
        best = sim.optimal_threads(spec, [1, 2, 4, 8, 16])
        assert best <= 8

    def test_equivalent_gemm_dims(self):
        assert GemvSpec(m=10, n=20).equivalent_gemm().dims == (10, 20, 1)


class TestRoutineSimulator:
    def setup_method(self):
        self.oracle = RoutineSimulator(
            MachineSimulator(tiny_test_node(), noise=QUIET, seed=0))

    def test_syrk_cheaper_than_equivalent_gemm(self):
        spec = SyrkSpec(n=800, k=400)
        t_syrk = self.oracle.true_time(spec, 4)
        t_gemm = self.oracle.simulator.true_time(spec.equivalent_gemm(), 4)
        assert t_syrk < t_gemm

    def test_overheads_not_scaled(self):
        """Sync/copy follow the full schedule; only FLOPs are scaled, so
        SYRK time exceeds half the GEMM time."""
        spec = SyrkSpec(n=800, k=400)
        t_syrk = self.oracle.true_time(spec, 8)
        t_gemm = self.oracle.simulator.true_time(spec.equivalent_gemm(), 8)
        assert t_syrk > 0.5 * t_gemm

    def test_timed_run_reduces(self):
        spec = SyrkSpec(n=100, k=50)
        t = self.oracle.timed_run(spec, 4, repeats=3)
        assert t > 0

    def test_passthrough_properties(self):
        assert self.oracle.name == "tiny"
        assert self.oracle.max_threads() == 16


class TestInstallForRoutine:
    @pytest.fixture(scope="class")
    def syrk_install(self):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        rng = np.random.default_rng(5)
        specs = [SyrkSpec(n=int(n), k=int(k))
                 for n, k in zip(rng.integers(8, 900, 40),
                                 rng.integers(8, 900, 40))]
        cands = [c for c in candidate_models(budget="fast")
                 if c.name in ("Bayes Regression", "XGBoost")]
        bundle, oracle = install_for_routine(
            sim, specs, thread_grid=[1, 2, 4, 8, 16], candidates=cands,
            tune_iters=2, cv_folds=2, repeats=3, seed=0)
        return bundle, oracle

    def test_produces_working_predictor(self, syrk_install):
        bundle, oracle = syrk_install
        predictor = bundle.predictor()
        spec = SyrkSpec(n=64, k=512)
        m, k, n = spec.dims
        p = predictor.predict_threads(m, k, n)
        assert p in [1, 2, 4, 8, 16]

    def test_selection_beats_max_threads_on_average(self, syrk_install):
        bundle, oracle = syrk_install
        predictor = bundle.predictor()
        rng = np.random.default_rng(99)
        speedups = []
        for _ in range(20):
            spec = SyrkSpec(n=int(rng.integers(8, 600)),
                            k=int(rng.integers(8, 600)))
            m, k, n = spec.dims
            p = predictor.predict_threads(m, k, n)
            speedups.append(oracle.true_time(spec, 16)
                            / oracle.true_time(spec, p))
        assert float(np.mean(speedups)) > 1.1


class TestTrsmSpec:
    def test_reference_solves_system(self, rng):
        from repro.blas.trsm import TrsmSpec, trsm_reference

        spec = TrsmSpec(m=8, n=5, dtype="float64", alpha=2.0)
        l_mat = np.tril(rng.standard_normal((8, 8))) + 4.0 * np.eye(8)
        b0 = rng.standard_normal((8, 5))
        b = b0.copy()
        trsm_reference(spec, l_mat, b)
        # L @ X == alpha * B
        np.testing.assert_allclose(np.tril(l_mat) @ b, 2.0 * b0, rtol=1e-9)

    def test_upper_part_of_l_ignored(self, rng):
        from repro.blas.trsm import TrsmSpec, trsm_reference

        spec = TrsmSpec(m=5, n=3, dtype="float64")
        l_mat = np.tril(rng.standard_normal((5, 5))) + 3.0 * np.eye(5)
        noisy = l_mat + np.triu(rng.standard_normal((5, 5)), k=1)
        b0 = rng.standard_normal((5, 3))
        a, b = b0.copy(), b0.copy()
        trsm_reference(spec, l_mat, a)
        trsm_reference(spec, noisy, b)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_singular_diagonal_rejected(self, rng):
        from repro.blas.trsm import TrsmSpec, trsm_reference

        spec = TrsmSpec(m=3, n=2, dtype="float64")
        l_mat = np.tril(rng.standard_normal((3, 3)))
        l_mat[1, 1] = 0.0
        with pytest.raises(ValueError, match="singular"):
            trsm_reference(spec, l_mat, np.zeros((3, 2)))

    def test_cost_mapping(self):
        from repro.blas.trsm import TrsmSpec

        spec = TrsmSpec(m=100, n=50)
        assert spec.equivalent_gemm().dims == (100, 100, 50)
        assert 0.5 <= spec.work_fraction <= 0.51
        assert spec.flops < spec.equivalent_gemm().flops

    def test_adapter_accepts_trsm(self):
        from repro.blas.trsm import TrsmSpec
        from repro.machine.noise import QUIET
        from repro.machine.presets import tiny_test_node
        from repro.machine.simulator import MachineSimulator

        oracle = RoutineSimulator(MachineSimulator(tiny_test_node(), noise=QUIET))
        t = oracle.true_time(TrsmSpec(m=400, n=200), 4)
        assert t > 0


class TestRoutineCorrections:
    """The oracle's per-routine corrections pinned against the machine
    simulator's cost-model breakdown (the contract the routine-generic
    engine backends execute through)."""

    def setup_method(self):
        self.sim = MachineSimulator(tiny_test_node(), noise=QUIET, seed=0)
        self.oracle = RoutineSimulator(self.sim)

    def _breakdown(self, gemm, p):
        return self.sim.cost_model.breakdown(gemm, p, self.sim.affinity,
                                             self.sim.hyperthreading)

    def test_syrk_work_fraction_pinned_to_breakdown(self):
        """SYRK time == sync + copy + work_fraction * kernel, exactly:
        only the arithmetic scales, overheads follow the full
        schedule."""
        spec = SyrkSpec(n=600, k=300)
        for p in (1, 2, 4, 8, 16):
            bd = self._breakdown(spec.equivalent_gemm(), p)
            expected = bd.sync + bd.copy + bd.kernel * spec.work_fraction
            assert self.oracle.true_time(spec, p) == pytest.approx(
                expected, rel=1e-12)

    def test_gemv_is_the_uncorrected_equivalent_gemm(self):
        """GEMV needs no correction (work_fraction == 1): its n=1
        equivalent GEMM already sits on the cost model's bandwidth
        roofline."""
        spec = GemvSpec(m=3000, n=3000)
        assert spec.work_fraction == 1.0
        for p in (1, 2, 4, 8, 16):
            bd = self._breakdown(spec.equivalent_gemm(), p)
            assert self.oracle.true_time(spec, p) == pytest.approx(
                bd.total, rel=1e-12)

    def test_gemv_bandwidth_roofline_saturates_early(self):
        """The bandwidth-bound regime: GEMV's optimal thread count sits
        well below a compute-bound GEMM of the same footprint, and
        adding threads past it buys (almost) nothing."""
        gemv = GemvSpec(m=4000, n=4000)
        best_gemv = self.oracle.optimal_threads(gemv, [1, 2, 4, 8, 16])
        from repro.gemm.interface import GemmSpec

        cubic = GemmSpec(1200, 1200, 1200)  # compute-bound, saturates late
        best_gemm = self.sim.optimal_threads(cubic, [1, 2, 4, 8, 16])
        assert best_gemv < best_gemm
        # Past the roofline, more threads actively hurt GEMV (the
        # regime the extension exposes) while the cubic GEMM gains.
        t_best = self.oracle.true_time(gemv, best_gemv)
        t_max = self.oracle.true_time(gemv, 16)
        assert t_max > 1.5 * t_best

    def test_trsm_triangle_fraction_pinned(self):
        from repro.blas.trsm import TrsmSpec

        spec = TrsmSpec(m=500, n=250)
        bd = self._breakdown(spec.equivalent_gemm(), 8)
        expected = bd.sync + bd.copy + bd.kernel * spec.work_fraction
        assert self.oracle.true_time(spec, 8) == pytest.approx(
            expected, rel=1e-12)

    def test_gemm_spec_satisfies_oracle_protocol(self):
        """GemmSpec itself now answers the oracle protocol (identity
        equivalent, unit work fraction), so a RoutineBackend can serve
        stray GEMM traffic consistently."""
        from repro.gemm.interface import GemmSpec

        spec = GemmSpec(200, 100, 50)
        assert spec.equivalent_gemm() is spec
        assert spec.work_fraction == 1.0
        assert self.oracle.true_time(spec, 4) == pytest.approx(
            self._breakdown(spec, 4).total, rel=1e-12)
