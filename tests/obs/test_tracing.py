"""Request tracing: span chains, ring-buffer collector, JSONL export."""

import json

import pytest

from repro.obs.tracing import (CHAIN, RequestTrace, Span, SpanCollector,
                               new_trace_id)


def finished_trace(trace_id="t-test", t0=10.0) -> RequestTrace:
    trace = RequestTrace(trace_id, client="c0", routine="gemm",
                         shard="default", queue_depth=3, t_submit=t0)
    trace.t_batch_form = t0 + 0.001
    trace.t_exec_start = t0 + 0.002
    trace.t_exec_done = t0 + 0.005
    trace.batch_size = 4
    trace.tier = "table"
    trace.n_threads = 8
    trace.runtime_s = 0.003
    return trace


def test_new_trace_id_unique_and_prefixed():
    a, b = new_trace_id(), new_trace_id("x")
    assert a != b
    assert a.startswith("t") and b.startswith("x")


class TestSpanChain:
    def test_complete_chain_shape(self):
        spans = finished_trace().spans()
        assert [s.name for s in spans] == list(CHAIN)
        assert len(spans) == 6
        assert {s.trace_id for s in spans} == {"t-test"}

    def test_parentage(self):
        spans = finished_trace().spans()
        root = spans[0]
        assert root.parent_id is None
        assert all(s.parent_id == root.span_id for s in spans[1:])
        assert len({s.span_id for s in spans}) == 6  # unique within trace

    def test_causal_timestamps(self):
        by_name = {s.name: s for s in finished_trace().spans()}
        assert by_name["request"].t_start == 10.0
        assert by_name["request"].t_end == by_name["execute"].t_end
        assert by_name["queue_wait"].t_end == by_name["execute"].t_start
        assert by_name["batch"].t_start <= by_name["execute"].t_start
        for span in by_name.values():
            assert span.t_end >= span.t_start
            assert span.duration_s >= 0

    def test_attrs(self):
        by_name = {s.name: s for s in finished_trace().spans()}
        assert by_name["admission"].attrs["queue_depth"] == 3
        assert by_name["batch"].attrs["batch_size"] == 4
        assert by_name["predict"].attrs == {"tier": "table", "n_threads": 8}
        assert by_name["execute"].attrs["runtime_s"] == 0.003
        assert by_name["request"].attrs["status"] == "ok"
        assert by_name["request"].attrs["routine"] == "gemm"

    def test_unfinished_trace_still_materialises(self):
        """Missing stamps collapse to the submit time (no crash)."""
        trace = RequestTrace("t-x", "c0", None, "default", 0, 5.0)
        spans = trace.spans()
        assert [s.name for s in spans] == list(CHAIN)
        assert all(s.t_start == s.t_end == 5.0 for s in spans)
        assert "routine" not in spans[0].attrs  # omitted when unknown

    def test_span_as_dict_roundtrips_json(self):
        span = finished_trace().spans()[0]
        d = json.loads(json.dumps(span.as_dict()))
        assert d["name"] == "request"
        assert d["duration_s"] == pytest.approx(0.005)


class TestSpanCollector:
    def test_ring_bound_and_drop_accounting(self):
        collector = SpanCollector(capacity=5)
        for i in range(12):
            collector.finish(finished_trace(f"t{i}"))
        assert len(collector) == 5
        assert collector.n_traces == 12
        assert collector.n_dropped == 7
        assert collector.trace_ids() == [f"t{i}" for i in range(7, 12)]
        stats = collector.stats()
        assert stats == {"traces": 12, "retained": 5, "dropped": 7,
                         "complete": 5, "capacity": 5}

    def test_complete_requires_every_stamp_and_ok_status(self):
        collector = SpanCollector()
        assert collector.complete(finished_trace())
        unfinished = RequestTrace("t-u", "c", None, "default", 0, 0.0)
        assert not collector.complete(unfinished)
        errored = finished_trace()
        errored.status = "error"
        assert not collector.complete(errored)

    def test_chain_and_tail(self):
        collector = SpanCollector()
        for i in range(4):
            collector.finish(finished_trace(f"t{i}", t0=float(i)))
        chain = collector.chain("t2")
        assert [s.name for s in chain] == list(CHAIN)
        assert chain[0].trace_id == "t2"
        assert collector.chain("nope") == []
        tail = collector.tail(2)
        assert [s.trace_id for s in tail[::6]] == ["t2", "t3"]
        assert len(collector.spans()) == 4 * len(CHAIN)

    def test_export_jsonl(self, tmp_path):
        collector = SpanCollector()
        for i in range(3):
            collector.finish(finished_trace(f"t{i}"))
        path = tmp_path / "spans.jsonl"
        n = collector.export_jsonl(path)
        assert n == 3 * len(CHAIN)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == n
        assert {line["trace_id"] for line in lines} == {"t0", "t1", "t2"}
        assert all({"span_id", "parent_id", "name", "t_start", "t_end",
                    "duration_s"} <= set(line) for line in lines)

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanCollector(capacity=0)


def test_span_is_frozen():
    span = Span("t", "t/0", None, "request", 0.0, 1.0)
    with pytest.raises(AttributeError):
        span.name = "other"
