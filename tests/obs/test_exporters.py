"""Exporters: Prometheus text rendering, JSONL snapshots, artefact dirs."""

import json

from repro.obs.exporters import (read_jsonl, render_prometheus,
                                 write_metrics_jsonl, write_prometheus,
                                 write_snapshot)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanCollector

from .test_tracing import finished_trace


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serve.requests", routine="gemm").inc(7)
    reg.gauge("queue_depth").set(3)
    hist = reg.histogram("latency_s", routine="gemm")
    for v in range(1, 101):
        hist.observe(v / 1000.0)
    return reg


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_serve_requests counter" in text
        assert 'repro_serve_requests{routine="gemm"} 7.0' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3.0" in text
        assert text.endswith("\n")

    def test_name_sanitisation(self):
        """Dots and dashes are not Prometheus grammar; underscores are."""
        text = render_prometheus(populated_registry())
        assert "serve.requests" not in text
        assert "repro_serve_requests" in text

    def test_histogram_renders_as_summary(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_latency_s summary" in text
        assert 'repro_latency_s{quantile="0.5",routine="gemm"}' in text
        assert 'repro_latency_s{quantile="0.99",routine="gemm"}' in text
        assert 'repro_latency_s_count{routine="gemm"} 100' in text
        assert 'repro_latency_s_sum{routine="gemm"}' in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c').inc()
        text = render_prometheus(reg)
        assert r'path="a\"b\\c"' in text

    def test_collector_rows_render_as_gauges(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: {"engine_hits": 5},
                               component="engine")
        text = render_prometheus(reg)
        assert "# TYPE repro_engine_hits gauge" in text
        assert 'repro_engine_hits{component="engine"} 5.0' in text

    def test_custom_prefix_and_empty(self):
        reg = MetricsRegistry()
        assert render_prometheus(reg) == ""
        reg.counter("x").inc()
        assert "adsala_x" in render_prometheus(reg, prefix="adsala")

    def test_write_prometheus_creates_parents(self, tmp_path):
        path = write_prometheus(populated_registry(),
                                tmp_path / "deep" / "metrics.prom")
        assert path.exists()
        assert "repro_serve_requests" in path.read_text()


class TestJsonl:
    def test_metrics_jsonl_one_row_per_metric(self, tmp_path):
        reg = populated_registry()
        reg.register_collector(lambda: {"pulled": 1.0})
        path = tmp_path / "metrics.jsonl"
        n = write_metrics_jsonl(reg, path, ts=123.0)
        rows = read_jsonl(path)
        assert len(rows) == n == 4          # 3 instruments + 1 pull
        assert all(row["ts"] == 123.0 for row in rows)
        by_name = {row["name"]: row for row in rows}
        assert by_name["serve.requests"]["value"] == 7.0
        assert by_name["latency_s"]["count"] == 100
        assert by_name["pulled"]["type"] == "gauge"

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]


class TestSnapshot:
    def test_full_artefact_set(self, tmp_path):
        reg = populated_registry()
        reg.event("reload", ts=1.0, version=3)
        collector = SpanCollector()
        collector.finish(finished_trace())
        written = write_snapshot(reg, tmp_path / "obs", collector=collector,
                                 stats={"served": 12})
        assert set(written) == {"prometheus", "metrics", "spans", "stats"}
        payload = json.loads((tmp_path / "obs" / "stats.json").read_text())
        assert payload["stats"] == {"served": 12}
        assert payload["events"][0]["event"] == "reload"
        assert payload["trace"]["traces"] == 1
        spans = read_jsonl(tmp_path / "obs" / "spans.jsonl")
        assert len(spans) == 6

    def test_minimal_artefact_set(self, tmp_path):
        written = write_snapshot(populated_registry(), tmp_path)
        assert set(written) == {"prometheus", "metrics"}
        assert not (tmp_path / "spans.jsonl").exists()
        assert not (tmp_path / "stats.json").exists()
