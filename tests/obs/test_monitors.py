"""Drift monitors: latching, thresholds, rate limits, set delivery."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import DriftEvent, DriftMonitor, MonitorSet


def constant(value, count=100):
    """An extractor ignoring its source."""
    return lambda source: (value, count)


class TestDriftMonitor:
    def test_exactly_one_direction_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            DriftMonitor("m", constant(1.0))
        with pytest.raises(ValueError, match="exactly one"):
            DriftMonitor("m", constant(1.0), above=1.0, below=0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="min_count"):
            DriftMonitor("m", constant(1.0), above=0.5, min_count=0)
        with pytest.raises(ValueError, match="every"):
            DriftMonitor("m", constant(1.0), above=0.5, every=0)

    def test_fires_exactly_once_then_latches(self):
        fired = []
        monitor = DriftMonitor("rate", constant(0.9), above=0.5,
                               callback=fired.append)
        event = monitor.evaluate(None)
        assert isinstance(event, DriftEvent)
        assert event.value == 0.9 and event.threshold == 0.5
        assert event.direction == "above" and event.count == 100
        # Staying beyond the threshold must NOT re-fire.
        for _ in range(10):
            assert monitor.evaluate(None) is None
        assert len(fired) == 1
        assert monitor.fired is event

    def test_reset_rearms(self):
        monitor = DriftMonitor("rate", constant(0.9), above=0.5)
        assert monitor.evaluate(None) is not None
        assert monitor.evaluate(None) is None
        monitor.reset()
        assert monitor.evaluate(None) is not None

    def test_below_threshold_never_fires(self):
        monitor = DriftMonitor("rate", constant(0.3), above=0.5)
        for _ in range(5):
            assert monitor.evaluate(None) is None
        assert monitor.fired is None
        assert monitor.last_value == 0.3

    def test_below_direction(self):
        monitor = DriftMonitor("hit_rate", constant(0.2), below=0.6)
        event = monitor.evaluate(None)
        assert event is not None and event.direction == "below"

    def test_min_count_gates_until_evidence(self):
        calls = {"n": 0}

        def extract(source):
            calls["n"] += 1
            return 0.9, calls["n"]      # count grows per evaluation

        monitor = DriftMonitor("rate", extract, above=0.5, min_count=3)
        assert monitor.evaluate(None) is None       # count=1
        assert monitor.evaluate(None) is None       # count=2
        assert monitor.evaluate(None) is not None   # count=3: trusted

    def test_none_extraction_skipped(self):
        monitor = DriftMonitor("rate", lambda s: None, above=0.5)
        assert monitor.evaluate(None) is None
        assert monitor.last_value is None

    def test_every_rate_limits_extraction(self):
        calls = {"n": 0}

        def extract(source):
            calls["n"] += 1
            return 0.1, 1               # never crosses

        monitor = DriftMonitor("p99", extract, above=2.0, every=3)
        for _ in range(9):
            monitor.evaluate(None)
        assert calls["n"] == 3          # evaluations 1, 4, 7

    def test_event_as_dict(self):
        event = DriftEvent("m", value=0.123456789, threshold=0.1,
                           direction="above", count=5)
        assert event.as_dict() == {"monitor": "m", "value": 0.123457,
                                   "threshold": 0.1, "direction": "above",
                                   "count": 5}


class TestMonitorSet:
    def test_evaluate_delivers_and_records(self):
        registry = MetricsRegistry()
        seen = []
        monitors = MonitorSet([DriftMonitor("a", constant(0.9), above=0.5),
                               DriftMonitor("b", constant(0.1), above=0.5)],
                              on_fire=seen.append, registry=registry)
        fired = monitors.evaluate(None)
        assert [e.monitor for e in fired] == ["a"]
        assert [e.monitor for e in seen] == ["a"]
        assert monitors.evaluate(None) == []            # latched
        drift_events = registry.events("drift")
        assert len(drift_events) == 1
        assert drift_events[0]["monitor"] == "a"
        assert len(monitors.events) == 1

    def test_add_len_reset_stats(self):
        monitors = MonitorSet(registry=MetricsRegistry())
        assert len(monitors) == 0
        monitors.add(DriftMonitor("a", constant(0.9), above=0.5))
        assert len(monitors) == 1
        monitors.evaluate(None)
        stats = monitors.stats()
        assert stats["monitors"]["a"]["fired"]["value"] == 0.9
        assert stats["monitors"]["a"]["last_value"] == 0.9
        assert len(stats["events"]) == 1
        monitors.reset()
        assert monitors.stats()["monitors"]["a"]["fired"] is None
