"""BENCH artefact diffing: direction-aware tolerance comparison."""

import json

import pytest

from benchmarks.diff_bench import (compare_bench, direction_of, main,
                                   regressions, relative_change)


class TestDirections:
    def test_throughput_like_higher_is_better(self):
        assert direction_of("req_per_s") == "higher"
        assert direction_of("speedup") == "higher"
        assert direction_of("anything_per_s") == "higher"

    def test_cost_like_lower_is_better(self):
        assert direction_of("p99_ms") == "lower"
        assert direction_of("wall_s") == "lower"
        assert direction_of("overhead_pct") == "lower"

    def test_counts_drift_either_way(self):
        assert direction_of("served") == "either"
        assert direction_of("model_passes") == "either"


def test_relative_change():
    assert relative_change(100.0, 110.0) == pytest.approx(0.10)
    assert relative_change(100.0, 85.0) == pytest.approx(-0.15)
    assert relative_change(0.0, 0.0) == 0.0
    assert relative_change(0.0, 5.0) == float("inf")


class TestCompareBench:
    def test_throughput_drop_is_regression_rise_is_improvement(self):
        old = {"serve": {"req_per_s": 1000.0}}
        drop = compare_bench(old, {"serve": {"req_per_s": 850.0}})
        assert [f["status"] for f in drop] == ["regression"]
        rise = compare_bench(old, {"serve": {"req_per_s": 1200.0}})
        assert [f["status"] for f in rise] == ["improved"]
        flat = compare_bench(old, {"serve": {"req_per_s": 1005.0}})
        assert [f["status"] for f in flat] == ["ok"]

    def test_latency_rise_is_regression(self):
        old = {"serve": {"p99_ms": 10.0}}
        rise = compare_bench(old, {"serve": {"p99_ms": 15.0}})
        assert regressions(rise)[0]["metric"] == "p99_ms"
        drop = compare_bench(old, {"serve": {"p99_ms": 6.0}})
        assert [f["status"] for f in drop] == ["improved"]

    def test_count_drift_regresses_both_directions(self):
        old = {"serve": {"served": 100}}
        up = compare_bench(old, {"serve": {"served": 150}})
        down = compare_bench(old, {"serve": {"served": 50}})
        assert regressions(up) and regressions(down)

    def test_tolerance_respected(self):
        old = {"s": {"req_per_s": 1000.0}}
        new = {"s": {"req_per_s": 880.0}}            # -12%
        assert regressions(compare_bench(old, new, tolerance=0.10))
        assert not regressions(compare_bench(old, new, tolerance=0.15))

    def test_non_numeric_change_reported_not_failed(self):
        old = {"train": {"selected": "XGBoost"}}
        new = {"train": {"selected": "LightGBM"}}
        findings = compare_bench(old, new)
        assert [f["status"] for f in findings] == ["changed"]
        assert not regressions(findings)
        same = compare_bench(old, dict(old))
        assert [f["status"] for f in same] == ["ok"]

    def test_added_and_removed_are_informational(self):
        findings = compare_bench({"gone": {"x": 1}}, {"fresh": {"x": 1}})
        assert sorted(f["status"] for f in findings) == ["added", "removed"]
        assert not regressions(findings)
        findings = compare_bench({"s": {"old_metric": 1}},
                                 {"s": {"new_metric": 2}})
        assert sorted(f["status"] for f in findings) == ["added", "removed"]


class TestCli:
    def write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", {"s": {"req_per_s": 100.0}})
        new = self.write(tmp_path, "new.json", {"s": {"req_per_s": 101.0}})
        assert main([old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", {"s": {"req_per_s": 100.0}})
        new = self.write(tmp_path, "new.json", {"s": {"req_per_s": 50.0}})
        assert main([old, new]) == 1
        out = capsys.readouterr().out
        assert "regression" in out and "s.req_per_s" in out

    def test_tolerance_flag(self, tmp_path):
        old = self.write(tmp_path, "old.json", {"s": {"req_per_s": 100.0}})
        new = self.write(tmp_path, "new.json", {"s": {"req_per_s": 88.0}})
        assert main([old, new]) == 1
        assert main([old, new, "--tolerance", "0.2"]) == 0

    def test_exit_two_on_unreadable_input(self, tmp_path, capsys):
        new = self.write(tmp_path, "new.json", {"s": {}})
        assert main([str(tmp_path / "missing.json"), new]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        assert main([str(bad), new]) == 2
