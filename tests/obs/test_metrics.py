"""Metrics registry: instruments, reservoirs, collectors, events."""

import gc

import numpy as np
import pytest

from repro.obs.metrics import (DEFAULT_CAPACITY, Counter, Gauge, Histogram,
                               MetricsRegistry, Reservoir, default_registry,
                               next_instance_id, set_default_registry)


class TestReservoir:
    def test_exact_below_capacity(self):
        """Below capacity the reservoir IS the unbounded list it replaced."""
        r = Reservoir(capacity=100)
        values = [float(i) for i in range(80)]
        r.extend(values)
        assert list(r) == values
        assert len(r) == 80
        assert r.count == 80
        assert r.total == sum(values)
        assert r.minimum == 0.0 and r.maximum == 79.0
        assert not r.saturated
        assert bool(r)

    def test_bounded_past_capacity_with_exact_aggregates(self):
        r = Reservoir(capacity=50)
        values = list(range(1000))
        r.extend(values)
        assert len(r) == 50                      # retained sample bounded
        assert r.count == 1000                   # exact lifetime count
        assert r.total == float(sum(values))     # exact lifetime sum
        assert r.minimum == 0.0 and r.maximum == 999.0
        assert r.saturated
        assert set(r) <= set(float(v) for v in values)

    def test_deterministic_subsample(self):
        """Same seed + same stream => same retained sample."""
        a, b = Reservoir(capacity=16), Reservoir(capacity=16)
        for v in range(500):
            a.append(v)
            b.append(v)
        assert list(a) == list(b)

    def test_sequence_protocol_feeds_numpy(self):
        r = Reservoir(capacity=32)
        r.extend([3.0, 1.0, 2.0])
        assert r[0] == 3.0
        assert float(np.percentile(np.asarray(r, dtype=np.float64), 50)) == 2.0

    def test_percentile_and_summary(self):
        r = Reservoir()
        r.extend(range(1, 101))
        assert r.percentile(50) == pytest.approx(50.5)
        s = r.summary()
        assert s["count"] == 100
        assert s["sum"] == pytest.approx(5050.0)
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert {"p50", "p95", "p99"} <= set(s)

    def test_empty(self):
        r = Reservoir()
        assert not r
        assert len(r) == 0
        with pytest.raises(ValueError, match="empty"):
            r.percentile(50)
        assert r.summary() == {"count": 0, "sum": 0.0,
                               "min": None, "max": None}

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            Reservoir(capacity=0)


class TestInstruments:
    def test_counter(self):
        c = Counter("requests", {"routine": "gemm"})
        c.inc()
        c.inc(4)
        assert c.value == 5.0
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        assert c.describe() == {"name": "requests", "type": "counter",
                                "labels": {"routine": "gemm"}, "value": 5.0}

    def test_gauge(self):
        g = Gauge("depth", {})
        g.set(7)
        g.inc(2)
        g.dec(1)
        assert g.value == 8.0
        assert g.describe()["type"] == "gauge"

    def test_histogram(self):
        h = Histogram("latency", {}, capacity=8)
        for v in range(20):
            h.observe(v)
        assert h.count == 20
        assert len(h.reservoir) == 8
        d = h.describe()
        assert d["type"] == "histogram" and d["count"] == 20


class TestRegistry:
    def test_get_or_create_same_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("served", routine="gemm")
        b = reg.counter("served", routine="gemm")
        assert a is b
        c = reg.counter("served", routine="gemv")
        assert c is not a                   # distinct labels, distinct row
        assert len(reg.instruments()) == 2

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("x", a="1", b="2")
        b = reg.gauge("x", b="2", a="1")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("served")
        with pytest.raises(TypeError, match="not a gauge"):
            reg.gauge("served")
        with pytest.raises(TypeError, match="not a histogram"):
            reg.histogram("served")

    def test_collector_pull_with_labels(self):
        reg = MetricsRegistry()

        class Component:
            def metrics(self):
                return {"hits": 3, "misses": 1}

        comp = Component()
        reg.register_collector(comp.metrics, component="engine", instance="e1")
        rows = reg.collect()
        assert {r["name"]: r["value"] for r in rows} == {"hits": 3,
                                                         "misses": 1}
        assert all(r["labels"] == {"component": "engine", "instance": "e1"}
                   for r in rows)
        assert all(r["type"] == "gauge" for r in rows)

    def test_dead_collector_pruned(self):
        """A garbage-collected owner silently leaves the snapshot."""
        reg = MetricsRegistry()

        class Component:
            def metrics(self):
                return {"alive": 1}

        comp = Component()
        reg.register_collector(comp.metrics)
        assert len(reg.collect()) == 1
        del comp
        gc.collect()
        assert reg.collect() == []
        assert reg.collect() == []          # pruned, not just skipped

    def test_lambda_collector_held_strongly(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: {"x": 1.0})
        gc.collect()
        assert [r["value"] for r in reg.collect()] == [1.0]

    def test_events_ring_bounded_with_exact_count(self):
        reg = MetricsRegistry(events_capacity=4)
        for i in range(10):
            reg.event("reload", ts=float(i), version=i)
        events = reg.events()
        assert len(events) == 4
        assert [e["version"] for e in events] == [6, 7, 8, 9]  # oldest drop
        assert reg.n_events == 10

    def test_events_filter_by_name(self):
        reg = MetricsRegistry()
        reg.event("drift", ts=1.0)
        reg.event("reload", ts=2.0)
        assert [e["event"] for e in reg.events("drift")] == ["drift"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("served").inc()
        reg.event("boot", ts=0.0)
        snap = reg.snapshot()
        assert {"metrics", "events", "n_events"} <= set(snap)
        assert snap["n_events"] == 1
        assert snap["metrics"][0]["name"] == "served"


class TestDefaultRegistry:
    def test_singleton_and_swap(self):
        original = default_registry()
        try:
            assert default_registry() is original
            fresh = MetricsRegistry()
            set_default_registry(fresh)
            assert default_registry() is fresh
        finally:
            set_default_registry(original)
        assert default_registry() is original


def test_next_instance_id_unique():
    a, b = next_instance_id("srv"), next_instance_id("srv")
    assert a != b
    assert a.startswith("srv-") and b.startswith("srv-")


def test_default_capacity_is_generous():
    """The compat bound: short runs stay exact (bitwise telemetry)."""
    assert DEFAULT_CAPACITY >= 1024
