"""The real threaded executor: correctness for any thread count."""

import numpy as np
import pytest

from repro.gemm.blocked import BlockSizes
from repro.gemm.interface import GemmSpec
from repro.gemm.parallel import ParallelGemm
from repro.gemm.reference import gemm_reference


def _compare(spec, n_threads, seed=0):
    a, b, c = spec.random_operands(rng=seed)
    expected = c.copy()
    gemm_reference(spec, a, b, expected)
    got = c.copy()
    executor = ParallelGemm(n_threads, blocks=BlockSizes(mc=32, kc=32, nc=64))
    executor.run(spec, a, b, got)
    np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)
    return executor


class TestParallelCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_matches_reference_square(self, p):
        _compare(GemmSpec(48, 40, 56), p)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_skinny_shapes(self, p):
        _compare(GemmSpec(8, 256, 8), p)
        _compare(GemmSpec(128, 4, 128), p)

    def test_more_threads_than_rows(self):
        _compare(GemmSpec(3, 16, 3), 8)

    def test_alpha_beta_parallel(self):
        _compare(GemmSpec(32, 32, 32, alpha=1.5, beta=0.5), 4)

    def test_transposed_parallel(self):
        _compare(GemmSpec(24, 32, 20, transa="T", transb="T"), 4)

    def test_deterministic_across_repeats(self):
        spec = GemmSpec(32, 32, 32, dtype="float64")
        a, b, c = spec.random_operands(rng=5)
        ex = ParallelGemm(4)
        first = c.copy()
        ex.run(spec, a, b, first)
        second = c.copy()
        ex.run(spec, a, b, second)
        np.testing.assert_array_equal(first, second)


class TestParallelInstrumentation:
    def test_timings_populated(self):
        ex = _compare(GemmSpec(64, 64, 64), 4)
        t = ex.last_timings
        assert t.threads == 4
        assert t.total > 0
        assert t.copied_elements > 0

    def test_single_thread_no_sync(self):
        ex = _compare(GemmSpec(32, 32, 32), 1)
        assert ex.last_timings.sync == 0.0

    def test_copied_elements_grow_with_threads(self):
        ex1 = _compare(GemmSpec(64, 128, 64), 1)
        ex8 = _compare(GemmSpec(64, 128, 64), 8)
        assert (ex8.last_timings.copied_elements
                >= ex1.last_timings.copied_elements)

    def test_timed_run_returns_positive(self):
        spec = GemmSpec(32, 32, 32)
        a, b, c = spec.random_operands(rng=0)
        assert ParallelGemm(2).timed_run(spec, a, b, c, repeats=2) > 0

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            ParallelGemm(0)

    def test_rejects_bad_repeats(self):
        spec = GemmSpec(4, 4, 4)
        a, b, c = spec.random_operands(rng=0)
        with pytest.raises(ValueError):
            ParallelGemm(1).timed_run(spec, a, b, c, repeats=0)
