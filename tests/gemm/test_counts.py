"""Unit tests for FLOP and memory accounting."""

import numpy as np
import pytest

from repro.gemm.counts import (gemm_arithmetic_intensity, gemm_flops,
                               gemm_memory_bytes, max_dim_for_memory)


class TestGemmFlops:
    def test_matches_closed_form(self):
        assert gemm_flops(2, 3, 4) == 2 * 2 * 3 * 4 + 2 * 2 * 4

    def test_monotone_in_each_dim(self):
        base = gemm_flops(10, 10, 10)
        assert gemm_flops(11, 10, 10) > base
        assert gemm_flops(10, 11, 10) > base
        assert gemm_flops(10, 10, 11) > base

    def test_unit_problem(self):
        # 1x1x1: one multiply + one add, plus alpha/beta scaling.
        assert gemm_flops(1, 1, 1) == 4

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_rejects_invalid_dims(self, bad):
        with pytest.raises(ValueError):
            gemm_flops(bad, 1, 1)


class TestGemmMemory:
    def test_paper_formula_sgemm(self):
        # Paper IV-B: 4(mk + kn + mn) bytes for single precision.
        assert gemm_memory_bytes(3, 5, 7, "float32") == 4 * (15 + 35 + 21)

    def test_paper_formula_dgemm(self):
        assert gemm_memory_bytes(3, 5, 7, "float64") == 8 * (15 + 35 + 21)

    def test_dgemm_is_twice_sgemm(self):
        assert (gemm_memory_bytes(64, 128, 32, "float64")
                == 2 * gemm_memory_bytes(64, 128, 32, "float32"))

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            gemm_memory_bytes(2, 2, 2, "int32")

    def test_100mb_example(self):
        # A square SGEMM just under the paper's 100 MB threshold.
        d = max_dim_for_memory(100 * 1024 * 1024, "float32")
        assert gemm_memory_bytes(d, d, d, "float32") <= 100 * 1024 * 1024


class TestArithmeticIntensity:
    def test_grows_with_square_size(self):
        # Bigger square GEMMs do more flops per byte.
        assert (gemm_arithmetic_intensity(512, 512, 512)
                > gemm_arithmetic_intensity(64, 64, 64))

    def test_skinny_is_low_intensity(self):
        assert (gemm_arithmetic_intensity(64, 2048, 64)
                < gemm_arithmetic_intensity(512, 512, 512))


class TestMaxDimForMemory:
    def test_fits_within_cap(self):
        cap = 10 * 1024 * 1024
        d = max_dim_for_memory(cap)
        assert gemm_memory_bytes(d, d, d) <= cap

    def test_bigger_would_not_fit(self):
        cap = 10 * 1024 * 1024
        d = max_dim_for_memory(cap)
        assert gemm_memory_bytes(d + 2, d + 2, d + 2) > cap

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            max_dim_for_memory(0)
