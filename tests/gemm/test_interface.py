"""Unit tests for GemmSpec and the BLAS-style front ends."""

import numpy as np
import pytest

from repro.gemm.interface import GemmSpec, Transpose, dgemm, sgemm
from repro.gemm.reference import gemm_reference


class TestTranspose:
    @pytest.mark.parametrize("flag,expected", [
        ("N", Transpose.NO), ("n", Transpose.NO), ("T", Transpose.YES),
        ("t", Transpose.YES), (True, Transpose.YES), (False, Transpose.NO),
        (Transpose.YES, Transpose.YES),
    ])
    def test_parse(self, flag, expected):
        assert Transpose.from_flag(flag) is expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Transpose.from_flag("X")


class TestGemmSpec:
    def test_dims_and_footprint(self):
        spec = GemmSpec(64, 128, 32)
        assert spec.dims == (64, 128, 32)
        assert spec.memory_bytes == 4 * (64 * 128 + 128 * 32 + 64 * 32)
        assert spec.min_dim == 32 and spec.max_dim == 128

    def test_memory_mb_unit(self):
        spec = GemmSpec(512, 512, 512)
        assert spec.memory_mb == pytest.approx(3 * 512 * 512 * 4 / 2 ** 20)

    def test_operand_shapes_respect_transpose(self):
        spec = GemmSpec(3, 4, 5, transa="T", transb="T")
        assert spec.a_shape() == (4, 3)
        assert spec.b_shape() == (5, 4)
        assert spec.c_shape() == (3, 5)

    def test_key_distinguishes_dtype_and_transpose(self):
        a = GemmSpec(2, 2, 2)
        b = GemmSpec(2, 2, 2, dtype="float64")
        c = GemmSpec(2, 2, 2, transa="T")
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            GemmSpec(0, 1, 1)

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            GemmSpec(1, 1, 1, dtype="int8")

    def test_frozen(self):
        spec = GemmSpec(2, 2, 2)
        with pytest.raises(Exception):
            spec.m = 3

    def test_random_operands_aligned(self):
        spec = GemmSpec(8, 8, 8)
        a, b, c = spec.random_operands(rng=0)
        for arr in (a, b, c):
            assert arr.ctypes.data % 64 == 0
            assert str(arr.dtype) == "float32"

    def test_random_operands_shapes(self):
        spec = GemmSpec(3, 4, 5, transa="T")
        a, b, c = spec.random_operands(rng=0)
        assert a.shape == (4, 3) and b.shape == (4, 5) and c.shape == (3, 5)


class TestBlasFrontEnds:
    def test_sgemm_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 4)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        c = np.zeros((6, 5), dtype=np.float32)
        sgemm("N", "N", 6, 5, 4, 1.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_dgemm_with_alpha_beta(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((3, 2))
        b = rng.standard_normal((2, 3))
        c0 = rng.standard_normal((3, 3))
        c = c0.copy()
        dgemm("N", "N", 3, 3, 2, 2.0, a, b, 0.5, c)
        np.testing.assert_allclose(c, 2.0 * a @ b + 0.5 * c0, rtol=1e-12)

    def test_transposed_inputs(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((4, 6)).astype(np.float32)  # stored k x m
        b = rng.standard_normal((5, 4)).astype(np.float32)  # stored n x k
        c = np.zeros((6, 5), dtype=np.float32)
        sgemm("T", "T", 6, 5, 4, 1.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, a.T @ b.T, rtol=1e-5)

    def test_custom_backend_is_used(self):
        calls = []

        def backend(spec, a, b, c):
            calls.append(spec.dims)
            return gemm_reference(spec, a, b, c)

        spec = GemmSpec(2, 3, 2)
        a, b, c = spec.random_operands(rng=0)
        from repro.gemm.interface import gemm

        gemm(spec, a, b, c, backend=backend)
        assert calls == [(2, 3, 2)]
