"""Packing buffer semantics and copy-volume accounting."""

import numpy as np
import pytest

from repro.gemm.packing import PackingBuffer, pack_block, packing_bytes, packing_volume


class TestPackingBuffer:
    def test_pack_returns_contiguous_copy(self):
        ws = PackingBuffer(64, dtype="float32")
        src = np.arange(24, dtype=np.float32).reshape(4, 6)[:, ::2]  # strided view
        out = ws.pack(src)
        assert out.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(out, src)

    def test_copy_volume_accumulates(self):
        ws = PackingBuffer(100)
        ws.pack(np.zeros((2, 3), dtype=np.float32))
        ws.pack(np.zeros((4, 5), dtype=np.float32))
        assert ws.copied_elements == 6 + 20

    def test_reset_stats(self):
        ws = PackingBuffer(100)
        ws.pack(np.zeros((2, 2), dtype=np.float32))
        ws.reset_stats()
        assert ws.copied_elements == 0

    def test_overflow_raises(self):
        ws = PackingBuffer(4)
        with pytest.raises(ValueError, match="exceeds"):
            ws.pack(np.zeros((3, 3), dtype=np.float32))

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            PackingBuffer(0)


class TestPackBlock:
    def test_extracts_requested_block(self):
        src = np.arange(30, dtype=np.float64).reshape(5, 6)
        out = pack_block(src, (1, 3), (2, 5))
        np.testing.assert_array_equal(out, src[1:3, 2:5])

    def test_out_of_bounds_raises(self):
        src = np.zeros((4, 4))
        with pytest.raises(ValueError):
            pack_block(src, (0, 5), (0, 2))

    def test_routes_through_workspace(self):
        src = np.ones((3, 3), dtype=np.float32)
        ws = PackingBuffer(16, dtype="float32")
        pack_block(src, (0, 3), (0, 3), workspace=ws)
        assert ws.copied_elements == 9


class TestPackingVolume:
    def test_single_thread_is_operand_volume(self):
        assert packing_volume(8, 4, 6, 1) == 8 * 4 + 4 * 6

    def test_grows_monotonically_for_small_matrices(self):
        # The Table VII mechanism: more threads => more replicated copy.
        vols = [packing_volume(64, 2048, 64, p) for p in (1, 4, 16, 96)]
        assert vols == sorted(vols)
        assert vols[-1] > 5 * vols[0]

    def test_bytes_scale_with_dtype(self):
        assert (packing_bytes(8, 8, 8, 4, "float64")
                == 2 * packing_bytes(8, 8, 8, 4, "float32"))
