"""Partitioning invariants: coverage, balance, replication volumes."""

import numpy as np
import pytest

from repro.gemm.partition import (Partition1D, Partition2D, choose_thread_grid,
                                  factor_grid, split_range)


class TestSplitRange:
    def test_covers_exactly(self):
        bounds = split_range(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0  # contiguous, no gaps/overlap

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in split_range(17, 5)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 17

    def test_more_parts_than_extent(self):
        bounds = split_range(2, 5)
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == 2 and len(bounds) == 5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            split_range(-1, 2)
        with pytest.raises(ValueError):
            split_range(5, 0)


class TestFactorGrid:
    def test_product_equals_p(self):
        for p in (1, 6, 12, 48, 96):
            pm, pn = factor_grid(p, 100, 100)
            assert pm * pn == p

    def test_square_matrix_gets_squarish_grid(self):
        pm, pn = factor_grid(16, 1000, 1000)
        assert {pm, pn} == {4, 4}

    def test_tall_matrix_gets_tall_grid(self):
        pm, pn = factor_grid(8, 10000, 10)
        assert pm > pn

    def test_wide_matrix_gets_wide_grid(self):
        pm, pn = factor_grid(8, 10, 10000)
        assert pn > pm


class TestPartition2D:
    def test_blocks_tile_c_exactly(self):
        part = Partition2D.for_threads(10, 7, 9, 6)
        covered = np.zeros((10, 9), dtype=int)
        for (r0, r1), (c0, c1) in part.thread_blocks():
            covered[r0:r1, c0:c1] += 1
        assert (covered == 1).all()

    def test_replication_volumes(self):
        part = Partition2D(m=8, k=4, n=6, pm=2, pn=3)
        assert part.packed_a_volume() == 8 * 4 * 3  # A replicated per grid col
        assert part.packed_b_volume() == 4 * 6 * 2  # B replicated per grid row

    def test_single_thread_packs_once(self):
        part = Partition2D(m=8, k=4, n=6, pm=1, pn=1)
        assert part.packed_a_volume() == 8 * 4
        assert part.packed_b_volume() == 4 * 6

    def test_volume_grows_with_threads(self):
        small = Partition2D.for_threads(64, 2048, 64, 4)
        big = Partition2D.for_threads(64, 2048, 64, 96)
        assert (big.packed_a_volume() + big.packed_b_volume()
                > small.packed_a_volume() + small.packed_b_volume())


class TestPartition1D:
    def test_full_columns(self):
        part = Partition1D(m=10, k=3, n=7, p=4)
        for _, (c0, c1) in part.thread_blocks():
            assert (c0, c1) == (0, 7)

    def test_active_threads_capped_by_rows(self):
        assert Partition1D(m=3, k=2, n=2, p=8).active_threads() == 3


class TestChooseThreadGrid:
    def test_contains_endpoints(self):
        grid = choose_thread_grid(96)
        assert 1 in grid and 96 in grid

    def test_sorted_unique_within_range(self):
        grid = choose_thread_grid(256)
        assert grid == sorted(set(grid))
        assert all(1 <= t <= 256 for t in grid)

    def test_exhaustive_mode(self):
        assert choose_thread_grid(8, include_all=True) == list(range(1, 9))

    def test_single_core_machine(self):
        assert choose_thread_grid(1) == [1]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            choose_thread_grid(0)
