"""The reference kernel is the oracle — test it against numpy directly."""

import numpy as np
import pytest

from repro.gemm.interface import GemmSpec
from repro.gemm.reference import gemm_reference


def _run(spec, seed=0):
    a, b, c = spec.random_operands(rng=seed)
    c0 = c.copy()
    gemm_reference(spec, a, b, c)
    return a, b, c0, c


class TestReferenceCorrectness:
    @pytest.mark.parametrize("m,k,n", [(1, 1, 1), (2, 3, 4), (7, 5, 3), (16, 1, 16)])
    def test_plain_product(self, m, k, n):
        spec = GemmSpec(m, k, n, dtype="float64")
        a, b, _, c = _run(spec)
        np.testing.assert_allclose(c, a @ b, rtol=1e-12)

    def test_beta_accumulation(self):
        spec = GemmSpec(4, 4, 4, dtype="float64", alpha=1.5, beta=-0.5)
        a, b, c0, c = _run(spec)
        np.testing.assert_allclose(c, 1.5 * (a @ b) - 0.5 * c0, rtol=1e-12)

    def test_beta_zero_ignores_nan_in_c(self):
        # BLAS requires beta==0 to overwrite C even if it holds NaN.
        spec = GemmSpec(3, 3, 3, dtype="float64", beta=0.0)
        a, b, c = spec.random_operands(rng=0)
        c[...] = np.nan
        gemm_reference(spec, a, b, c)
        assert np.isfinite(c).all()

    @pytest.mark.parametrize("ta,tb", [("T", "N"), ("N", "T"), ("T", "T")])
    def test_transposes(self, ta, tb):
        spec = GemmSpec(5, 6, 4, dtype="float64", transa=ta, transb=tb)
        a, b, _, c = _run(spec)
        op_a = a.T if ta == "T" else a
        op_b = b.T if tb == "T" else b
        np.testing.assert_allclose(c, op_a @ op_b, rtol=1e-12)

    def test_float32_storage_float64_accumulate(self):
        # Result should be closer to the float64 truth than naive float32.
        spec = GemmSpec(64, 512, 64, dtype="float32")
        a, b, _, c = _run(spec)
        truth = a.astype(np.float64) @ b.astype(np.float64)
        np.testing.assert_allclose(c, truth.astype(np.float32), rtol=1e-6)

    def test_returns_same_object(self):
        spec = GemmSpec(2, 2, 2)
        a, b, c = spec.random_operands(rng=0)
        assert gemm_reference(spec, a, b, c) is c


class TestReferenceValidation:
    def test_shape_mismatch(self):
        spec = GemmSpec(3, 3, 3)
        a, b, c = spec.random_operands(rng=0)
        with pytest.raises(ValueError, match="shape"):
            gemm_reference(spec, a[:2], b, c)

    def test_dtype_mismatch(self):
        spec = GemmSpec(3, 3, 3)
        a, b, c = spec.random_operands(rng=0)
        with pytest.raises(ValueError, match="dtype"):
            gemm_reference(spec, a.astype(np.float64), b, c)

    def test_non_array_operand(self):
        spec = GemmSpec(2, 2, 2)
        a, b, c = spec.random_operands(rng=0)
        with pytest.raises(TypeError):
            gemm_reference(spec, [[1.0, 2.0], [3.0, 4.0]], b, c)
