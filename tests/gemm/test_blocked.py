"""Blocked kernel vs the reference oracle across shapes and params."""

import numpy as np
import pytest

from repro.gemm.blocked import BlockSizes, gemm_blocked
from repro.gemm.interface import GemmSpec
from repro.gemm.reference import gemm_reference


def _compare(spec, blocks=None, seed=0, rtol=1e-4):
    a, b, c = spec.random_operands(rng=seed)
    expected = c.copy()
    gemm_reference(spec, a, b, expected)
    got = c.copy()
    gemm_blocked(spec, a, b, got, blocks=blocks)
    np.testing.assert_allclose(got, expected, rtol=rtol, atol=1e-5)


class TestBlockedCorrectness:
    @pytest.mark.parametrize("m,k,n", [
        (1, 1, 1), (5, 7, 3), (64, 64, 64), (100, 37, 59), (3, 500, 2),
    ])
    def test_matches_reference(self, m, k, n):
        _compare(GemmSpec(m, k, n))

    def test_blocks_smaller_than_matrix(self):
        # Forces multiple panels in every loop level.
        _compare(GemmSpec(50, 60, 70), blocks=BlockSizes(mc=16, kc=24, nc=32))

    def test_blocks_larger_than_matrix(self):
        _compare(GemmSpec(8, 8, 8), blocks=BlockSizes(mc=1024, kc=1024, nc=1024))

    @pytest.mark.parametrize("alpha,beta", [(2.0, 0.0), (1.0, 1.0), (-0.5, 0.25)])
    def test_alpha_beta(self, alpha, beta):
        _compare(GemmSpec(20, 30, 10, alpha=alpha, beta=beta))

    @pytest.mark.parametrize("ta,tb", [("T", "N"), ("N", "T"), ("T", "T")])
    def test_transposes(self, ta, tb):
        _compare(GemmSpec(24, 18, 12, transa=ta, transb=tb))

    def test_sub_range_updates_only_that_block(self):
        spec = GemmSpec(16, 8, 16, dtype="float64", beta=1.0)
        a, b, c = spec.random_operands(rng=3)
        before = c.copy()
        gemm_blocked(spec, a, b, c, row_range=(4, 8), col_range=(2, 10))
        # Outside the block nothing changed.
        mask = np.ones_like(c, dtype=bool)
        mask[4:8, 2:10] = False
        np.testing.assert_array_equal(c[mask], before[mask])
        # Inside matches the reference restricted product.
        expected = before[4:8, 2:10] + a[4:8] @ b[:, 2:10]
        np.testing.assert_allclose(c[4:8, 2:10], expected, rtol=1e-12)

    def test_invalid_range_raises(self):
        spec = GemmSpec(4, 4, 4)
        a, b, c = spec.random_operands(rng=0)
        with pytest.raises(ValueError):
            gemm_blocked(spec, a, b, c, row_range=(2, 10))


class TestBlockSizes:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BlockSizes(mc=0)

    def test_for_cache_scales_with_cache(self):
        small = BlockSizes.for_cache(256 * 1024, 4 * 1024 * 1024)
        large = BlockSizes.for_cache(2 * 1024 * 1024, 64 * 1024 * 1024)
        assert large.kc >= small.kc
        assert large.nc >= small.nc
