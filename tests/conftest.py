"""Shared fixtures: tiny machines, small datasets, deterministic RNGs.

Everything here is sized for test speed: the tiny node has 16 logical
CPUs so exhaustive thread-grid assertions stay cheap, and the cached
micro-installation trains two candidates on a few dozen shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gather import DataGatherer
from repro.core.training import InstallationWorkflow
from repro.machine.noise import QUIET, NoiseModel
from repro.machine.presets import tiny_test_node
from repro.machine.simulator import MachineSimulator
from repro.ml.registry import candidate_models

MB = 1024 * 1024


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_sim():
    """Deterministic (noise-free) small simulated node."""
    return MachineSimulator(tiny_test_node(), noise=QUIET, seed=0)


@pytest.fixture
def noisy_tiny_sim():
    return MachineSimulator(tiny_test_node(), noise=NoiseModel(), seed=0)


@pytest.fixture
def tiny_grid():
    return [1, 2, 4, 8, 12, 16]


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small gathered dataset on the tiny node (session-cached)."""
    sim = MachineSimulator(tiny_test_node(), seed=0)
    gatherer = DataGatherer(sim, thread_grid=[1, 2, 4, 8, 12, 16], repeats=3)
    return gatherer.gather(n_shapes=40, memory_cap_bytes=64 * MB, seed=0)


@pytest.fixture(scope="session")
def tiny_bundle():
    """A micro-installation (two candidates) on the tiny node.

    The 8 MB memory cap keeps the campaign in the regime where thread
    count genuinely matters on an 8-core node, so assertions about
    speedup over the max-thread baseline are meaningful.
    """
    sim = MachineSimulator(tiny_test_node(), seed=0)
    cands = [c for c in candidate_models(budget="fast")
             if c.name in ("Linear Regression", "XGBoost")]
    workflow = InstallationWorkflow(
        sim, memory_cap_bytes=8 * MB, n_shapes=70,
        thread_grid=[1, 2, 4, 8, 12, 16], candidates=cands,
        tune_iters=2, cv_folds=2, repeats=3, seed=0)
    return workflow.run(), sim


@pytest.fixture
def regression_data(rng):
    """A nonlinear regression problem every model can be smoke-tested on."""
    n, d = 600, 6
    X = rng.standard_normal((n, d))
    y = (np.sin(2 * X[:, 0]) + 0.5 * X[:, 1] ** 2
         + X[:, 2] * X[:, 3] + 0.05 * rng.standard_normal(n))
    return X, y
