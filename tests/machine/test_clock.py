"""Simulated time accounting."""

import pytest

from repro.machine.clock import SimClock


class TestSimClock:
    def test_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(5.0)
        assert clock.elapsed == 15.0

    def test_node_hours(self):
        clock = SimClock()
        clock.advance(7200.0)
        assert clock.node_hours == 2.0

    def test_categories(self):
        clock = SimClock()
        clock.advance(1.0, category="gemm")
        clock.advance(2.0, category="train")
        clock.advance(3.0, category="gemm")
        assert clock.by_category == {"gemm": 4.0, "train": 2.0}

    def test_reset(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.reset()
        assert clock.elapsed == 0.0 and clock.by_category == {}

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_report_mentions_hours(self):
        clock = SimClock()
        clock.advance(3600.0, category="gather")
        text = clock.report()
        assert "node hours" in text and "gather" in text
