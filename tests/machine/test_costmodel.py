"""Cost model shape: the qualitative facts the paper measures."""

import numpy as np
import pytest

from repro.gemm.interface import GemmSpec
from repro.machine.affinity import AffinityPolicy
from repro.machine.presets import gadi, setonix, tiny_test_node


@pytest.fixture(scope="module")
def models():
    return {"setonix": setonix(), "gadi": gadi(), "tiny": tiny_test_node()}


class TestBreakdownBasics:
    def test_components_non_negative(self, models):
        for cm in models.values():
            bd = cm.breakdown(GemmSpec(256, 256, 256), 4)
            assert bd.sync >= 0 and bd.copy >= 0 and bd.kernel > 0
            assert bd.total == pytest.approx(bd.sync + bd.copy + bd.kernel)

    def test_single_thread_has_no_parallel_overheads(self, models):
        for cm in models.values():
            bd = cm.breakdown(GemmSpec(256, 256, 256), 1)
            assert bd.sync == 0.0
            assert bd.copy == 0.0

    def test_sync_grows_with_threads(self, models):
        cm = models["gadi"]
        spec = GemmSpec(1024, 1024, 1024)
        sync = [cm.breakdown(spec, p).sync for p in (2, 8, 32, 96)]
        assert sync == sorted(sync)

    def test_dgemm_slower_than_sgemm(self, models):
        cm = models["gadi"]
        t32 = cm.total_time(GemmSpec(512, 512, 512, dtype="float32"), 8)
        t64 = cm.total_time(GemmSpec(512, 512, 512, dtype="float64"), 8)
        assert t64 > t32


class TestPaperShapeFacts:
    def test_max_threads_suboptimal_for_small_gemm(self, models):
        """Fig. 1's core observation: tiny GEMM hates full thread counts."""
        for name in ("setonix", "gadi"):
            cm = models[name]
            maxt = cm.topology.logical_cpus
            spec = GemmSpec(64, 2048, 64)  # Table VII case 1
            assert cm.total_time(spec, maxt) > 5 * cm.total_time(spec, 1)

    def test_large_square_wants_many_threads(self, models):
        for name in ("setonix", "gadi"):
            cm = models[name]
            spec = GemmSpec(4000, 4000, 4000)
            assert cm.total_time(spec, cm.topology.physical_cores) \
                < cm.total_time(spec, 2)

    def test_gadi_converges_near_one_at_large_sizes(self, models):
        """Fig. 12: MKL-with-max-threads is near-optimal for big GEMM."""
        cm = models["gadi"]
        spec = GemmSpec(6000, 6000, 6000)  # ~412 MB
        t_max = cm.total_time(spec, 96)
        t_half = cm.total_time(spec, 48)
        assert t_max / t_half < 1.35

    def test_setonix_keeps_advantage_at_large_sizes(self, models):
        """Fig. 11: BLIS-with-ML stays ~1.2-1.4x even at 400+ MB."""
        cm = models["setonix"]
        spec = GemmSpec(6000, 6000, 6000)
        t_max = cm.total_time(spec, 256)
        t_half = cm.total_time(spec, 128)
        assert 1.1 < t_max / t_half < 2.0

    def test_copy_dominates_small_gemm_at_max_threads(self, models):
        """Table VII: data copy is the biggest component at 96 threads."""
        cm = models["gadi"]
        bd = cm.breakdown(GemmSpec(64, 2048, 64), 96)
        assert bd.copy > bd.kernel
        assert bd.copy > bd.sync

    def test_optimal_threads_monotone_with_size(self, models):
        """Bigger squarer problems should want (weakly) more threads."""
        cm = models["gadi"]
        grid = [1, 2, 4, 8, 16, 24, 48, 96]

        def best(spec):
            return min(grid, key=lambda p: cm.total_time(spec, p))

        small = best(GemmSpec(128, 128, 128))
        large = best(GemmSpec(4000, 4000, 4000))
        assert small < large


class TestAffinityEffects:
    def test_core_based_faster_below_half_max(self, models):
        """Fig. 7: core-based wins when p < half the logical CPUs."""
        for name in ("setonix", "gadi"):
            cm = models[name]
            p = cm.topology.physical_cores // 2
            spec = GemmSpec(1500, 1500, 1500)
            t_cores = cm.total_time(spec, p, AffinityPolicy.CORES)
            t_threads = cm.total_time(spec, p, AffinityPolicy.THREADS)
            assert t_cores < t_threads

    def test_policies_converge_at_max_threads(self, models):
        cm = models["gadi"]
        spec = GemmSpec(1000, 1000, 1000)
        t_cores = cm.total_time(spec, 96, AffinityPolicy.CORES)
        t_threads = cm.total_time(spec, 96, AffinityPolicy.THREADS)
        assert t_cores == pytest.approx(t_threads, rel=0.05)


class TestValidation:
    def test_smt_yield_bounds(self, models):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(models["tiny"], smt_yield=0.2)

    def test_kernel_efficiency_bounds(self, models):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(models["tiny"], kernel_efficiency=1.5)
