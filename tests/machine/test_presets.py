"""Preset lookup and cross-platform sanity."""

import pytest

from repro.gemm.interface import GemmSpec
from repro.machine.noise import QUIET
from repro.machine.presets import by_name, gadi, setonix, tiny_test_node
from repro.machine.simulator import MachineSimulator


class TestLookup:
    @pytest.mark.parametrize("name,cores", [
        ("setonix", 128), ("gadi", 48), ("tiny", 8),
    ])
    def test_by_name(self, name, cores):
        assert by_name(name).topology.physical_cores == cores

    def test_case_insensitive(self):
        assert by_name("SETONIX").topology.name == "setonix"

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="gadi"):
            by_name("frontier")


class TestCrossPlatform:
    def test_platforms_comparable_on_large_square(self):
        """128 Milan cores and 48 AVX-512 CLX cores have near-equal peak
        (10.4 vs 9.8 TF SP), so neither platform should win by much."""
        spec = GemmSpec(6000, 6000, 6000)
        t_s = MachineSimulator(setonix(), noise=QUIET).true_time(spec, 128)
        t_g = MachineSimulator(gadi(), noise=QUIET).true_time(spec, 48)
        assert 0.5 < t_s / t_g < 2.0

    def test_realistic_gflops_range(self):
        """Best-config throughput lands in a plausible hardware range."""
        spec = GemmSpec(4000, 4000, 4000)
        for preset, lo, hi in ((setonix, 1000, 9000), (gadi, 1000, 8000)):
            sim = MachineSimulator(preset(), noise=QUIET)
            grid = [1, 8, 32, sim.topology.physical_cores]
            best = sim.optimal_threads(spec, grid)
            gflops = spec.flops / sim.true_time(spec, best) / 1e9
            assert lo < gflops < hi, f"{preset.__name__}: {gflops}"

    def test_fresh_instances_are_independent(self):
        a, b = setonix(), setonix()
        assert a is not b and a == b  # frozen dataclass equality
