"""Thread placement: core-based vs thread-based policies (paper Fig. 7)."""

import pytest

from repro.machine.affinity import AffinityPolicy, place_threads
from repro.machine.presets import gadi_topology, setonix_topology, tiny_test_node


@pytest.fixture
def tiny_topo():
    return tiny_test_node().topology


class TestCoreBasedPlacement:
    def test_no_smt_sharing_below_core_count(self, tiny_topo):
        # 8 physical cores: up to 8 threads each own a core.
        for p in range(1, tiny_topo.physical_cores + 1):
            placement = place_threads(tiny_topo, p, AffinityPolicy.CORES)
            assert placement.max_threads_per_core == 1
            assert placement.cores_used == p

    def test_smt_kicks_in_above_core_count(self, tiny_topo):
        placement = place_threads(tiny_topo, tiny_topo.physical_cores + 1,
                                  AffinityPolicy.CORES)
        assert placement.max_threads_per_core == 2

    def test_full_machine(self, tiny_topo):
        placement = place_threads(tiny_topo, tiny_topo.logical_cpus,
                                  AffinityPolicy.CORES)
        assert placement.cores_used == tiny_topo.physical_cores
        assert placement.sockets_used == tiny_topo.sockets


class TestThreadBasedPlacement:
    def test_siblings_pack_early(self, tiny_topo):
        # Two threads land on the same core under OMP_PLACES=threads.
        placement = place_threads(tiny_topo, 2, AffinityPolicy.THREADS)
        assert placement.cores_used == 1
        assert placement.max_threads_per_core == 2

    def test_half_machine_uses_half_cores(self, tiny_topo):
        p = tiny_topo.physical_cores
        placement = place_threads(tiny_topo, p, AffinityPolicy.THREADS)
        assert placement.cores_used == p // 2

    def test_policies_converge_at_max(self, tiny_topo):
        p = tiny_topo.logical_cpus
        a = place_threads(tiny_topo, p, AffinityPolicy.CORES)
        b = place_threads(tiny_topo, p, AffinityPolicy.THREADS)
        assert set(a.cpu_ids) == set(b.cpu_ids)


class TestHyperthreadingToggle:
    def test_ht_off_limits_capacity(self, tiny_topo):
        with pytest.raises(ValueError):
            place_threads(tiny_topo, tiny_topo.physical_cores + 1,
                          hyperthreading=False)

    def test_ht_off_never_shares_cores(self, tiny_topo):
        for p in (1, tiny_topo.physical_cores):
            placement = place_threads(tiny_topo, p, AffinityPolicy.THREADS,
                                      hyperthreading=False)
            assert placement.max_threads_per_core == 1


class TestRealPlatforms:
    def test_gadi_96_spans_both_sockets(self):
        placement = place_threads(gadi_topology(), 96)
        assert placement.sockets_used == 2
        assert placement.cores_used == 48

    def test_setonix_small_team_single_socket(self):
        placement = place_threads(setonix_topology(), 16)
        assert placement.sockets_used == 1

    def test_policy_parse(self):
        assert AffinityPolicy.parse("cores") is AffinityPolicy.CORES
        assert AffinityPolicy.parse("THREADS") is AffinityPolicy.THREADS
        with pytest.raises(ValueError):
            AffinityPolicy.parse("sockets")

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            place_threads(gadi_topology(), 0)
