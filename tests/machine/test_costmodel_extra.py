"""Additional cost-model invariants and sensitivity checks."""

import numpy as np
import pytest
from dataclasses import replace

from repro.gemm.interface import GemmSpec
from repro.machine.presets import gadi, setonix, tiny_test_node


class TestCoefficientSensitivity:
    """Perturbing each coefficient moves the cost in the right direction
    — guards against silent sign errors when re-calibrating presets."""

    def setup_method(self):
        self.cm = gadi()
        self.small = GemmSpec(64, 2048, 64)
        self.large = GemmSpec(4000, 4000, 4000)

    def test_kernel_efficiency_speeds_up_compute(self):
        faster = replace(self.cm, kernel_efficiency=1.0)
        assert faster.breakdown(self.large, 48).kernel \
            < self.cm.breakdown(self.large, 48).kernel

    def test_sync_coefficients_only_affect_sync(self):
        heavy = replace(self.cm, sync_per_thread_us=self.cm.sync_per_thread_us * 10)
        a, b = self.cm.breakdown(self.large, 48), heavy.breakdown(self.large, 48)
        assert b.sync > a.sync
        assert b.kernel == a.kernel
        assert b.copy == a.copy

    def test_pack_contention_hits_small_shapes_hardest(self):
        heavy = replace(self.cm, pack_contention=self.cm.pack_contention * 4)
        ratio_small = (heavy.breakdown(self.small, 96).copy
                       / self.cm.breakdown(self.small, 96).copy)
        ratio_large = (heavy.breakdown(self.large, 96).copy
                       / self.cm.breakdown(self.large, 96).copy)
        assert ratio_small > ratio_large

    def test_copy_bw_fraction_speeds_streaming(self):
        faster = replace(self.cm, copy_bw_fraction=1.0)
        assert faster.breakdown(self.large, 96).copy \
            < self.cm.breakdown(self.large, 96).copy


class TestScaleInvariances:
    def test_best_config_runtime_monotone_in_problem_volume(self):
        """At each problem's *own best* thread count, more work never
        finishes faster.  (At a fixed excessive thread count this can
        legitimately fail: a larger problem amortises the per-thread
        packing overheads that strangle the smaller one — the same
        physics as the paper's Table VII pathology.)"""
        cm = setonix()
        grid = [1, 4, 16, 64, 128, 256]

        def best(spec):
            return min(cm.total_time(spec, p) for p in grid)

        base = best(GemmSpec(500, 500, 500))
        assert best(GemmSpec(1000, 500, 500)) >= base
        assert best(GemmSpec(500, 1000, 500)) >= base
        assert best(GemmSpec(500, 500, 1000)) >= base

    def test_overhead_regime_nonmonotonicity_exists(self):
        """Document the intentional non-monotonicity: at full thread
        count, doubling m can *reduce* wall time for a small GEMM."""
        cm = setonix()
        t_small = cm.total_time(GemmSpec(500, 500, 500), 256)
        t_bigger = cm.total_time(GemmSpec(1000, 500, 500), 256)
        # Not asserted as < (calibration-dependent), but both must stay
        # far above the best-config times (the regime is overheads).
        best_small = min(cm.total_time(GemmSpec(500, 500, 500), p)
                         for p in (1, 16, 64, 128))
        assert t_small > 2 * best_small
        assert t_bigger > 0

    def test_mn_swap_symmetry_of_kernel(self):
        """m and n are interchangeable in the kernel (C transposed)."""
        cm = tiny_test_node()
        a = cm.breakdown(GemmSpec(300, 100, 700), 4)
        b = cm.breakdown(GemmSpec(700, 100, 300), 4)
        assert a.kernel == pytest.approx(b.kernel, rel=0.25)

    def test_time_scaling_with_cube_doubling(self):
        """Doubling every dimension (8x flops) costs 2..16x time: below
        8x because larger problems run the kernels more efficiently
        (fringe/ramp amortisation), but still a clear superlinear cost."""
        cm = gadi()
        t1 = cm.total_time(GemmSpec(500, 500, 500), 24)
        t2 = cm.total_time(GemmSpec(1000, 1000, 1000), 24)
        assert 2.0 < t2 / t1 < 16.0

    def test_breakdown_deterministic(self):
        cm = gadi()
        spec = GemmSpec(123, 456, 789)
        a = cm.breakdown(spec, 17)
        b = cm.breakdown(spec, 17)
        assert a == b
