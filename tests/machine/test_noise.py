"""Noise model statistics."""

import numpy as np
import pytest

from repro.machine.noise import QUIET, NoiseModel


class TestSigma:
    def test_short_runs_noisier(self):
        nm = NoiseModel()
        assert nm.sigma_for(1e-6) > nm.sigma_for(1.0)

    def test_floor_reached_for_long_runs(self):
        nm = NoiseModel(sigma_floor=0.02, sigma_short=0.1)
        assert nm.sigma_for(100.0) == pytest.approx(0.02, rel=0.01)

    def test_rejects_nonpositive_runtime(self):
        with pytest.raises(ValueError):
            NoiseModel().sigma_for(0.0)


class TestApply:
    def test_quiet_is_identity(self):
        rng = np.random.default_rng(0)
        assert QUIET.apply(0.5, rng) == 0.5

    def test_positive_output(self):
        nm = NoiseModel(spike_prob=0.5)
        rng = np.random.default_rng(0)
        values = nm.apply_many(1e-4, rng, 1000)
        assert (values > 0).all()

    def test_spikes_inflate_upper_tail(self):
        rng = np.random.default_rng(0)
        no_spikes = NoiseModel(spike_prob=0.0).apply_many(1e-3, rng, 2000)
        rng = np.random.default_rng(0)
        spiky = NoiseModel(spike_prob=0.2, spike_scale=2.0).apply_many(1e-3, rng, 2000)
        assert np.percentile(spiky, 99) > np.percentile(no_spikes, 99)

    def test_relative_error_matches_sigma(self):
        nm = NoiseModel(sigma_floor=0.05, sigma_short=0.0, spike_prob=0.0)
        rng = np.random.default_rng(0)
        values = nm.apply_many(1.0, rng, 5000)
        assert np.std(np.log(values)) == pytest.approx(0.05, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma_floor=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(spike_prob=1.5)
        with pytest.raises(ValueError):
            NoiseModel().apply_many(1.0, np.random.default_rng(0), 0)
