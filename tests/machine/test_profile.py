"""Profiler reports (Table VII reproduction machinery)."""

import pytest

from repro.gemm.interface import GemmSpec
from repro.machine.noise import QUIET
from repro.machine.presets import gadi
from repro.machine.profile import profile_gemm
from repro.machine.simulator import MachineSimulator


@pytest.fixture(scope="module")
def sim():
    return MachineSimulator(gadi(), noise=QUIET, seed=0)


class TestProfileReport:
    def test_components_sum_to_total(self, sim):
        report = profile_gemm(sim, GemmSpec(64, 2048, 64), 96, repetitions=100)
        assert report.total == pytest.approx(
            report.sync + report.kernel + report.copy, rel=1e-9)

    def test_scales_linearly_with_repetitions(self, sim):
        spec = GemmSpec(64, 64, 512)
        r1 = profile_gemm(sim, spec, 8, repetitions=10)
        r2 = profile_gemm(sim, spec, 8, repetitions=20)
        assert r2.total == pytest.approx(2 * r1.total)

    def test_table7_case1_shape(self, sim):
        """64x2048x64: 96-thread copy dominates; low threads fix it."""
        spec = GemmSpec(64, 2048, 64)
        many = profile_gemm(sim, spec, 96, repetitions=1000)
        few = profile_gemm(sim, spec, 14, repetitions=1000)
        assert many.copy > many.kernel
        assert many.total > 10 * few.total

    def test_table7_case2_single_thread_no_overheads(self, sim):
        """64x64x4096 with ML picks 1 thread: sync and copy are zero."""
        report = profile_gemm(sim, GemmSpec(64, 64, 4096), 1, repetitions=1000)
        assert report.sync == 0.0
        assert report.copy == 0.0
        assert report.kernel > 0

    def test_row_format(self, sim):
        report = profile_gemm(sim, GemmSpec(64, 2048, 64), 96, repetitions=10)
        row = report.row("case1")
        assert row["case"] == "case1"
        assert set(row) == {"case", "threads", "total_s", "sync_s",
                            "kernel_s", "copy_s"}

    def test_noisy_profile_close_to_model(self, sim):
        from repro.machine.noise import NoiseModel
        from repro.machine.presets import gadi as gadi_preset

        noisy = MachineSimulator(gadi_preset(), noise=NoiseModel(), seed=0)
        spec = GemmSpec(256, 256, 256)
        clean = profile_gemm(noisy, spec, 8, repetitions=50, noisy=False)
        measured = profile_gemm(noisy, spec, 8, repetitions=50, noisy=True)
        assert measured.total == pytest.approx(clean.total, rel=0.5)
        # Proportional attribution preserves the breakdown ratios.
        assert (measured.copy / measured.total
                == pytest.approx(clean.copy / clean.total, rel=1e-6))

    def test_rejects_bad_repetitions(self, sim):
        with pytest.raises(ValueError):
            profile_gemm(sim, GemmSpec(8, 8, 8), 1, repetitions=0)
