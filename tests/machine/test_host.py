"""Real-host execution backend."""

import numpy as np
import pytest

from repro.gemm.interface import GemmSpec
from repro.machine.host import HostMachine


@pytest.fixture(scope="module")
def host():
    return HostMachine(max_threads=4)


class TestHostMachine:
    def test_timed_run_positive(self, host):
        t = host.timed_run(GemmSpec(48, 48, 48), 2, repeats=2)
        assert t > 0

    def test_clock_accumulates_real_time(self, host):
        before = host.clock.elapsed
        host.timed_run(GemmSpec(32, 32, 32), 1, repeats=2)
        assert host.clock.elapsed > before

    def test_rejects_excess_threads(self, host):
        with pytest.raises(ValueError):
            host.run(GemmSpec(8, 8, 8), 100)

    def test_operand_cache_reuses_buffers(self, host):
        spec = GemmSpec(16, 16, 16)
        host.run(spec, 1)
        a1 = host._operands[spec.key()][0]
        host.run(spec, 1)
        a2 = host._operands[spec.key()][0]
        assert a1 is a2
        host.release_operands()
        assert spec.key() not in host._operands

    def test_optimal_threads_from_grid(self, host):
        best = host.optimal_threads(GemmSpec(64, 64, 64), [1, 2, 4], repeats=2)
        assert best in (1, 2, 4)

    def test_reduce_modes(self, host):
        # Separate timed_run calls measure independently on real
        # hardware, so only per-call sanity is asserted.
        spec = GemmSpec(24, 24, 24)
        for reduce in ("min", "median", "mean"):
            assert host.timed_run(spec, 1, repeats=3, reduce=reduce) > 0
        with pytest.raises(ValueError):
            host.timed_run(spec, 1, repeats=3, reduce="mode")

    def test_execution_is_correct(self):
        """The timing path must compute the right product."""
        host = HostMachine(max_threads=2)
        spec = GemmSpec(20, 30, 10, dtype="float64")
        a, b, c = host._operands_for(spec)
        from repro.gemm.parallel import ParallelGemm

        expected = a @ b
        ParallelGemm(2).run(spec, a, b, c)
        np.testing.assert_allclose(c, expected, rtol=1e-10)

    def test_name_and_capacity(self, host):
        assert host.name == "host"
        assert host.max_threads() == 4


class TestHostEndToEnd:
    def test_micro_installation_on_host(self):
        """A miniature real-hardware installation completes and returns
        a usable predictor (real timings, tiny campaign)."""
        from repro.core.training import InstallationWorkflow
        from repro.ml.registry import candidate_models

        host = HostMachine(max_threads=2)
        cands = [c for c in candidate_models(budget="fast")
                 if c.name == "Bayes Regression"]
        workflow = InstallationWorkflow(
            host, memory_cap_bytes=2 * 1024 * 1024, n_shapes=12,
            thread_grid=[1, 2], candidates=cands, tune_iters=1, cv_folds=2,
            repeats=2, seed=0)
        bundle = workflow.run()
        p = bundle.predictor().predict_threads(64, 64, 64)
        assert p in (1, 2)
