"""Topology arithmetic on the paper's two platforms."""

import pytest

from repro.machine.presets import gadi_topology, setonix_topology
from repro.machine.topology import NodeTopology


class TestSetonixTopology:
    def setup_method(self):
        self.topo = setonix_topology()

    def test_core_counts_match_paper(self):
        # 2 sockets x 64 Zen3 cores, SMT2 => 256 simultaneous threads.
        assert self.topo.physical_cores == 128
        assert self.topo.logical_cpus == 256

    def test_modules_match_paper(self):
        # Each Milan CPU has eight modules of eight cores w/ 32 MB L3.
        assert self.topo.modules_per_socket == 8
        assert self.topo.cores_per_module == 8
        assert self.topo.l3_mb_per_module == 32.0

    def test_numa_domains(self):
        # Eight NUMA domains, four per socket.
        assert self.topo.numa_domains == 8

    def test_max_threads_toggle(self):
        assert self.topo.max_threads(True) == 256
        assert self.topo.max_threads(False) == 128


class TestGadiTopology:
    def setup_method(self):
        self.topo = gadi_topology()

    def test_core_counts_match_paper(self):
        # 2 sockets x 24 Cascade Lake cores, SMT2 => 96 threads.
        assert self.topo.physical_cores == 48
        assert self.topo.logical_cpus == 96

    def test_numa_domains(self):
        assert self.topo.numa_domains == 4

    def test_peak_flops_ordering(self):
        # Per-core CLX (AVX-512) beats per-core Milan (AVX2) in SP.
        assert (self.topo.peak_gflops_core("float32")
                > setonix_topology().peak_gflops_core("float32"))
        # But the node total favours the 128-core Milan box.
        assert (self.topo.peak_gflops_node("float32")
                < setonix_topology().peak_gflops_node("float32"))

    def test_dp_is_half_sp(self):
        assert (self.topo.peak_gflops_core("float64")
                == pytest.approx(self.topo.peak_gflops_core("float32") / 2))


class TestCpuEnumeration:
    def setup_method(self):
        self.topo = NodeTopology(
            name="t", sockets=2, modules_per_socket=2, cores_per_module=2,
            smt=2, freq_ghz=1.0, flops_per_cycle_sp=8, l2_kb=512,
            l3_mb_per_module=4.0, numa_domains_per_socket=1,
            mem_bw_gbs_per_socket=10.0, mem_gb=16)

    def test_first_block_is_primary_threads(self):
        for cpu_id in range(self.topo.physical_cores):
            assert self.topo.cpu(cpu_id).smt_rank == 0

    def test_second_block_is_smt_siblings(self):
        for cpu_id in range(self.topo.physical_cores, self.topo.logical_cpus):
            cpu = self.topo.cpu(cpu_id)
            assert cpu.smt_rank == 1
            assert cpu.core == cpu_id - self.topo.physical_cores

    def test_socket_major_core_order(self):
        assert self.topo.cpu(0).socket == 0
        assert self.topo.cpu(self.topo.cores_per_socket).socket == 1

    def test_module_assignment(self):
        # Cores 0,1 in module 0; cores 2,3 in module 1 (socket 0).
        assert self.topo.cpu(0).module == 0
        assert self.topo.cpu(2).module == 1
        assert self.topo.cpu(4).module == 2  # first module of socket 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            self.topo.cpu(self.topo.logical_cpus)

    def test_l3_aggregation_clamped(self):
        assert self.topo.l3_bytes_for_modules(100) == 4 * 4 * 1024 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeTopology(name="bad", sockets=0, modules_per_socket=1,
                         cores_per_module=1, smt=1, freq_ghz=1.0,
                         flops_per_cycle_sp=8, l2_kb=512, l3_mb_per_module=4.0,
                         numa_domains_per_socket=1, mem_bw_gbs_per_socket=10.0,
                         mem_gb=16)

    def test_describe_mentions_name(self):
        assert "t:" in self.topo.describe()
