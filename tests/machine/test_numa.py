"""NUMA memory-policy model (paper Section V-B2)."""

import numpy as np
import pytest

from repro.gemm.interface import GemmSpec
from repro.machine.noise import QUIET, NoiseModel
from repro.machine.numa import NumaMode, NumaPolicy, policy
from repro.machine.presets import gadi, gadi_topology
from repro.machine.simulator import MachineSimulator


class TestNumaPolicy:
    def test_parse(self):
        assert policy("interleave").mode is NumaMode.INTERLEAVE
        assert policy("LOCAL").mode is NumaMode.LOCAL
        with pytest.raises(ValueError):
            policy("striped")

    def test_interleave_single_socket_below_full(self):
        """On one socket, interleave still touches remote domains, so
        its factor is below a purely local placement's."""
        topo = gadi_topology()
        inter = NumaPolicy(NumaMode.INTERLEAVE).bandwidth_factor(topo, 1)
        local = NumaPolicy(NumaMode.LOCAL).bandwidth_factor(topo, 1)
        assert inter < local == 1.0

    def test_interleave_best_for_full_node(self):
        topo = gadi_topology()
        factors = {mode: NumaPolicy(mode).bandwidth_factor(topo, 2)
                   for mode in NumaMode}
        assert factors[NumaMode.INTERLEAVE] == 1.0
        assert factors[NumaMode.LOCAL] < 1.0
        assert factors[NumaMode.BIND_ONE] < factors[NumaMode.LOCAL]

    def test_jitter_ordering(self):
        """Interleave stabilises runtimes (the paper's observation)."""
        assert NumaPolicy(NumaMode.INTERLEAVE).jitter_multiplier() == 1.0
        assert NumaPolicy(NumaMode.LOCAL).jitter_multiplier() > 1.0


class TestSimulatorIntegration:
    def test_interleave_is_reference(self):
        spec = GemmSpec(2000, 2000, 2000)
        a = MachineSimulator(gadi(), noise=QUIET, numa="interleave")
        b = MachineSimulator(gadi(), noise=QUIET)  # default
        assert a.true_time(spec, 48) == b.true_time(spec, 48)

    def test_bind_slower_across_sockets(self):
        spec = GemmSpec(3000, 3000, 3000)
        inter = MachineSimulator(gadi(), noise=QUIET, numa="interleave")
        bind = MachineSimulator(gadi(), noise=QUIET, numa="bind")
        # A 48-thread team spans both sockets: one memory controller
        # serving everything is clearly slower.
        assert bind.true_time(spec, 48) > 1.2 * inter.true_time(spec, 48)

    def test_local_noisier_than_interleave(self):
        spec = GemmSpec(500, 500, 500)
        inter = MachineSimulator(gadi(), noise=NoiseModel(), seed=0,
                                 numa="interleave")
        local = MachineSimulator(gadi(), noise=NoiseModel(), seed=0,
                                 numa="local")
        t_i = [inter.run(spec, 48, iteration=i).time for i in range(100)]
        t_l = [local.run(spec, 48, iteration=i).time for i in range(100)]
        cv = lambda xs: np.std(xs) / np.mean(xs)
        assert cv(t_l) > cv(t_i)

    def test_single_thread_unaffected_by_local(self):
        """A one-thread team on one socket sees full local bandwidth."""
        spec = GemmSpec(1000, 1000, 1000)
        inter = MachineSimulator(gadi(), noise=QUIET, numa="interleave")
        local = MachineSimulator(gadi(), noise=QUIET, numa="local")
        # local >= interleave quality for a single-socket team.
        assert local.true_time(spec, 1) <= inter.true_time(spec, 1) * 1.01
