"""Simulator determinism, noise behaviour and timing protocol."""

import numpy as np
import pytest

from repro.gemm.interface import GemmSpec
from repro.machine.noise import QUIET, NoiseModel
from repro.machine.presets import tiny_test_node
from repro.machine.simulator import MachineSimulator


@pytest.fixture
def spec():
    return GemmSpec(200, 150, 100)


class TestDeterminism:
    def test_same_seed_same_timings(self, spec):
        a = MachineSimulator(tiny_test_node(), seed=7)
        b = MachineSimulator(tiny_test_node(), seed=7)
        assert a.run(spec, 4).time == b.run(spec, 4).time

    def test_order_independence(self, spec):
        """Timings depend on call coordinates, not call order."""
        a = MachineSimulator(tiny_test_node(), seed=7)
        b = MachineSimulator(tiny_test_node(), seed=7)
        a.run(spec, 2, iteration=0)
        t_a = a.run(spec, 4, iteration=0).time
        t_b = b.run(spec, 4, iteration=0).time  # no prior call on b
        assert t_a == t_b

    def test_different_seed_different_noise(self, spec):
        a = MachineSimulator(tiny_test_node(), seed=1)
        b = MachineSimulator(tiny_test_node(), seed=2)
        assert a.run(spec, 4).time != b.run(spec, 4).time

    def test_iterations_vary(self, spec):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        times = {sim.run(spec, 4, iteration=i).time for i in range(5)}
        assert len(times) == 5


class TestNoiseBehaviour:
    def test_quiet_matches_model_exactly(self, spec):
        sim = MachineSimulator(tiny_test_node(), noise=QUIET, seed=0)
        result = sim.run(spec, 4)
        assert result.time == pytest.approx(result.breakdown.total)

    def test_noise_centered_near_truth(self, spec):
        sim = MachineSimulator(tiny_test_node(), noise=NoiseModel(), seed=0)
        truth = sim.true_time(spec, 4)
        times = [sim.run(spec, 4, iteration=i).time for i in range(200)]
        assert np.median(times) == pytest.approx(truth, rel=0.1)

    def test_median_reduction_robust_to_spikes(self, spec):
        noisy = NoiseModel(spike_prob=0.3, spike_scale=5.0)
        sim = MachineSimulator(tiny_test_node(), noise=noisy, seed=0)
        truth = sim.true_time(spec, 4)
        med = sim.timed_run(spec, 4, repeats=21, reduce="median")
        mean = sim.timed_run(spec, 4, repeats=21, reduce="mean")
        assert abs(med - truth) < abs(mean - truth)


class TestTimingProtocol:
    def test_timed_run_reductions(self, spec):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        mn = sim.timed_run(spec, 4, repeats=10, reduce="min")
        md = sim.timed_run(spec, 4, repeats=10, reduce="median")
        assert mn <= md

    def test_unknown_reduction_raises(self, spec):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        with pytest.raises(ValueError):
            sim.timed_run(spec, 4, reduce="mode")

    def test_clock_accumulates(self, spec):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        sim.timed_run(spec, 4, repeats=5)
        assert sim.clock.elapsed > 0
        assert sim.clock.by_category["gemm"] == sim.clock.elapsed


class TestOptimalThreads:
    def test_matches_exhaustive_argmin(self, spec):
        sim = MachineSimulator(tiny_test_node(), noise=QUIET, seed=0)
        grid = [1, 2, 4, 8, 16]
        best = sim.optimal_threads(spec, grid)
        times = {p: sim.true_time(spec, p) for p in grid}
        assert best == min(times, key=times.get)

    def test_empty_grid_raises(self, spec):
        sim = MachineSimulator(tiny_test_node(), seed=0)
        with pytest.raises(ValueError):
            sim.optimal_threads(spec, [])

    def test_gflops_property(self, spec):
        sim = MachineSimulator(tiny_test_node(), noise=QUIET, seed=0)
        result = sim.run(spec, 4)
        assert result.gflops == pytest.approx(spec.flops / result.time / 1e9)
