"""Multi-process fleet: spawn, parity, hot-reload, rollout, worker death.

Every test here spawns real worker processes, so the suite keeps the
process count small (2-worker fleets) and folds related assertions
into shared scenarios rather than paying a spawn per claim.
"""

import asyncio

import pytest

from repro.bench.loadgen import bias_bundle
from repro.blas.gemv import GemvSpec
from repro.engine.service import GemmService
from repro.fleet import FleetServer, WorkerFailed, WorkerSpec
from repro.gemm.interface import GemmSpec
from repro.machine.presets import by_name
from repro.machine.simulator import MachineSimulator
from repro.obs.metrics import MetricsRegistry
from repro.serve.request import ServerOverloaded
from repro.train.registry import ModelRegistry


def run(coro):
    return asyncio.run(coro)


def mixed_specs(n, base=24):
    """Deterministic gemm/gemv mix exercising both routing cells."""
    specs = []
    for i in range(n):
        if i % 3 == 2:
            specs.append(GemvSpec(base + 8 * i, 4 * base + 8 * i))
        else:
            specs.append(GemmSpec(base + 8 * i, 2 * base, base + 4 * i))
    return specs


def make_fleet(registry_root, workers=2, **kwargs):
    kwargs.setdefault("max_wait_ms", 1.0)
    return FleetServer.from_registry(
        registry_root, "tiny", workers=workers,
        routines=("gemm", "gemv"), **kwargs)


class TestFleetServing:
    def test_parity_overload_and_stats(self, fleet_registry):
        specs = mixed_specs(30)
        reference = GemmService.from_registry(
            ModelRegistry(fleet_registry),
            MachineSimulator(by_name("tiny"), seed=0), machine_name="tiny")
        expected = [r.n_threads for r in reference.run_batch(specs)]

        async def scenario():
            fleet = make_fleet(fleet_registry)
            async with fleet:
                records = await fleet.submit_many(specs)
                # A tiny admission window must reject a burst whole,
                # not strand a prefix of it on worker queues.
                fleet.max_pending = 4
                with pytest.raises(ServerOverloaded):
                    await fleet.submit_many(mixed_specs(8))
                fleet.max_pending = 1024
                ws = await fleet.worker_stats()
            return records, ws, fleet.stats()

        records, worker_stats, stats = run(scenario())
        assert [r.n_threads for r in records] == expected
        served = [w["server"]["served"] for w in worker_stats.values()]
        assert sum(served) == len(specs)
        assert all(s > 0 for s in served), "router starved a worker"
        assert stats["served"] == len(specs)
        assert stats["rejected"] == 8
        assert stats["n_workers"] == 2 and stats["batches"] >= 2
        assert stats["latency_ms"]["count"] > 0
        for entry in stats["workers"].values():
            assert entry["counters"]["completed"] > 0
            assert entry["versions"] == {"gemm": 1, "gemv": 1}

    def test_watcher_rolls_fleet_without_drops(self, fleet_registry,
                                               tiny_bundle):
        bundle, _ = tiny_bundle
        registry = ModelRegistry(fleet_registry)

        async def scenario():
            fleet = make_fleet(fleet_registry, watch_interval_s=0.05)
            async with fleet:
                before = await fleet.submit_many(mixed_specs(12))
                # Publish-to-registry is the rollout: no fleet API call.
                registry.publish(bias_bundle(bundle, target=1),
                                 routine="gemm")
                deadline = asyncio.get_running_loop().time() + 10.0
                after = []
                while asyncio.get_running_loop().time() < deadline:
                    after = await fleet.submit_many(mixed_specs(12))
                    versions = {w.versions.get("gemm")
                                for w in fleet._workers.values()}
                    if versions == {2}:
                        break
                    await asyncio.sleep(0.05)
                else:
                    pytest.fail("watcher never rolled the fleet to v2")
                stats = fleet.telemetry.stats()
            return before, after, stats

        before, after, stats = run(scenario())
        assert all(r is not None for r in before + after)
        assert stats["failed"] == 0 and stats["rejected"] == 0
        # Both workers picked the publish up on their own.
        assert stats["reloads"] >= 2
        # The biased bundle pins gemm to 1 thread — proof the new
        # version is actually serving, not just acknowledged.
        gemm_after = [r.n_threads for r in after
                      if isinstance(r.spec, GemmSpec)]
        assert set(gemm_after) == {1}

    def test_rollout_promotes_and_rolls_back(self, fleet_registry,
                                             tiny_bundle):
        bundle, _ = tiny_bundle
        registry = ModelRegistry(fleet_registry)
        probes = [GemmSpec(24 + 16 * i, 48, 32) for i in range(8)]

        async def scenario():
            fleet = make_fleet(fleet_registry)
            async with fleet:
                registry.publish(bias_bundle(bundle, target=1),
                                 routine="gemm")
                bad = await fleet.rollout("gemm", probes=probes,
                                          max_divergence=0.0)
                versions_bad = {name: w.versions["gemm"]
                                for name, w in fleet._workers.items()}
                registry.publish(bundle, routine="gemm")
                good = await fleet.rollout("gemm", probes=probes,
                                           max_divergence=0.0)
                versions_good = {name: w.versions["gemm"]
                                 for name, w in fleet._workers.items()}
                records = await fleet.submit_many(probes)
            return bad, versions_bad, good, versions_good, records

        bad, versions_bad, good, versions_good, records = run(scenario())
        assert bad["action"] == "rolled_back" and bad["divergence"] > 0
        # Canary is back on the pre-rollout version; nobody promoted.
        assert set(versions_bad.values()) == {1}
        assert good["action"] == "promoted" and good["divergence"] == 0.0
        assert set(versions_good.values()) == {3}
        assert all(r is not None for r in records)

    def test_worker_death_drains_and_respawn_rejoins(self, fleet_registry,
                                                     tiny_bundle):
        bundle, _ = tiny_bundle
        registry = ModelRegistry(fleet_registry)

        async def scenario():
            fleet = make_fleet(fleet_registry, registry=MetricsRegistry())
            async with fleet:
                await fleet.submit_many(mixed_specs(6))
                victim = fleet._workers["worker-0"]
                old_pid = victim.pid
                # In-flight work on the victim when it dies...
                doomed = asyncio.ensure_future(
                    fleet.submit(GemmSpec(64, 64, 64), worker="worker-0"))
                await asyncio.sleep(0)
                victim.process.kill()
                with pytest.raises(WorkerFailed):
                    await doomed
                # ...while the survivor keeps serving the fleet.
                survivors = await fleet.submit_many(mixed_specs(9))
                with pytest.raises((WorkerFailed, KeyError)):
                    await fleet.submit(GemmSpec(32, 32, 32),
                                       worker="worker-0")
                # Publish while the worker is down: the respawn must
                # come back on the *current* latest, not a snapshot.
                registry.publish(bundle, routine="gemm")
                new_pid = await fleet.respawn("worker-0")
                rejoined = await fleet.submit(GemmSpec(80, 48, 48),
                                              worker="worker-0")
                versions = dict(fleet._workers["worker-0"].versions)
                events = fleet.telemetry.registry.events(
                    "fleet_worker_death")
            return old_pid, new_pid, survivors, rejoined, versions, events

        old_pid, new_pid, survivors, rejoined, versions, events = run(
            scenario())
        assert new_pid != old_pid
        assert all(r is not None for r in survivors)
        assert rejoined is not None
        assert versions == {"gemm": 2, "gemv": 1}
        assert len(events) == 1 and events[0]["worker"] == "worker-0"


class TestFleetConstruction:
    def test_from_registry_builds_named_specs(self, fleet_registry):
        fleet = make_fleet(fleet_registry, workers=3)
        specs = [w.spec for w in fleet._workers.values()]
        assert [s.name for s in specs] == ["worker-0", "worker-1",
                                           "worker-2"]
        assert all(s.registry_root == str(fleet_registry) for s in specs)

    def test_duplicate_names_rejected(self, fleet_registry):
        spec = WorkerSpec(name="w", registry_root=str(fleet_registry),
                          machine="tiny")
        with pytest.raises(ValueError, match="duplicate"):
            FleetServer([spec, spec])

    def test_unknown_router_rejected(self, fleet_registry):
        with pytest.raises(ValueError):
            make_fleet(fleet_registry, router="zigzag")
