"""Fixtures for the multi-process serving fleet tests.

Worker processes load bundles from a registry *path*, so every test
gets its own throwaway copy of a session-built seed registry — tests
publish and garbage-collect freely without coupling to each other,
while the expensive installation campaign runs once.
"""

import shutil

import pytest

from repro.train.registry import ModelRegistry


@pytest.fixture(scope="session")
def fleet_registry_seed(tmp_path_factory, tiny_bundle):
    """Session registry with the tiny bundle published as gemm and gemv."""
    bundle, _ = tiny_bundle
    root = tmp_path_factory.mktemp("fleet-registry-seed")
    registry = ModelRegistry(root)
    registry.publish(bundle, routine="gemm")
    registry.publish(bundle, routine="gemv")
    return root


@pytest.fixture
def fleet_registry(fleet_registry_seed, tmp_path):
    """Private copy of the seed registry for one test."""
    dest = tmp_path / "registry"
    shutil.copytree(fleet_registry_seed, dest)
    return dest
