"""WorkerSpec, factory resolution and slab framing — no processes spawned."""

import pickle

import pytest

from repro.fleet import (WorkerSpec, chunk_slots, chunk_slots_by_cost,
                         resolve_factory)


class TestWorkerSpec:
    def _spec(self, **overrides):
        base = dict(name="w0", registry_root="/tmp/reg", machine="tiny")
        base.update(overrides)
        return WorkerSpec(**base)

    def test_pickle_round_trip(self):
        spec = self._spec(routines=("gemm", "gemv"),
                          backend="repro.bench.loadgen:cpu_bound_backend",
                          backend_args=(("iters", 100),))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.routines == ("gemm", "gemv")
        assert dict(clone.backend_args) == {"iters": 100}

    def test_dict_round_trip(self):
        spec = self._spec(routines=["gemm"], version=3,
                          backend_args=[("iters", 7)])
        data = spec.as_dict()
        assert data["routines"] == ("gemm",)
        assert WorkerSpec.from_dict(data) == spec

    def test_validate_accepts_plain_data(self):
        spec = self._spec()
        assert spec.validate() is spec

    def test_validate_rejects_unpicklable_version(self):
        spec = self._spec(version=lambda: 1)
        with pytest.raises(ValueError, match="not picklable"):
            spec.validate()

    def test_validate_rejects_bad_backend_path(self):
        with pytest.raises(ValueError, match="module:attr"):
            self._spec(backend="no-colon-here").validate()
        with pytest.raises(ModuleNotFoundError):
            self._spec(backend="no.such.module:thing").validate()

    def test_build_backend(self):
        spec = self._spec(backend="repro.bench.loadgen:cpu_bound_backend",
                          backend_args=(("iters", 11),))
        backend = spec.build_backend()
        assert backend.iters == 11
        assert self._spec().build_backend() is None


class TestResolveFactory:
    def test_resolves_dotted_attr(self):
        fn = resolve_factory("repro.bench.loadgen:cpu_bound_backend")
        assert callable(fn)

    def test_rejects_malformed_path(self):
        for bad in ("", "just_module", ":attr", "mod:"):
            with pytest.raises(ValueError):
                resolve_factory(bad)


class TestChunkSlots:
    def test_chunks_preserve_order_and_cover(self):
        slots = list(range(10))
        chunks = list(chunk_slots(slots, 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_single_chunk_when_small(self):
        assert list(chunk_slots([1, 2], 16)) == [[1, 2]]
        assert list(chunk_slots([], 16)) == []

    def test_max_batch_one_yields_singletons(self):
        assert list(chunk_slots([3, 1, 2], 1)) == [[3], [1], [2]]

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            list(chunk_slots([1], 0))


class TestChunkSlotsByCost:
    def test_no_budget_matches_count_chunking(self):
        slots = list(range(10))
        assert list(chunk_slots_by_cost(slots, [1.0] * 10, 4, None)) \
            == list(chunk_slots(slots, 4))

    def test_budget_splits_before_overflow(self):
        chunks = list(chunk_slots_by_cost([7, 8, 9], [5.0, 5.0, 5.0],
                                          16, 10.0))
        assert chunks == [[7, 8], [9]]

    def test_oversized_slot_frames_alone(self):
        assert list(chunk_slots_by_cost([0, 1], [99.0, 1.0], 16, 10.0)) \
            == [[0], [1]]

    def test_empty_and_singleton_edges(self):
        assert list(chunk_slots_by_cost([], [], 4, 10.0)) == []
        assert list(chunk_slots_by_cost([5, 6], [1.0, 1.0], 1, 10.0)) \
            == [[5], [6]]

    def test_ragged_tail_covers_in_order(self):
        slots = list(range(7))
        costs = [2.0] * 7
        chunks = list(chunk_slots_by_cost(slots, costs, 3, 100.0))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6]]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(chunk_slots_by_cost([1], [1.0], 0, None))
        with pytest.raises(ValueError):
            list(chunk_slots_by_cost([1], [1.0], 4, -1.0))
