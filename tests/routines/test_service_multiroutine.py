"""GemmService with per-routine predictors: dispatch, isolation, reload."""

import numpy as np
import pytest

from repro.blas.gemv import GemvSpec
from repro.blas.syrk import SyrkSpec
from repro.blas.trsm import TrsmSpec
from repro.gemm.interface import GemmSpec
from tests.routines.conftest import GRID, ROUTINE_TARGETS, oracle_predictor

MIXED = [GemmSpec(64, 512, 64), GemvSpec(m=64, n=512),
         SyrkSpec(n=96, k=64), TrsmSpec(m=128, n=32),
         GemmSpec(64, 512, 64), GemvSpec(m=64, n=512)]


class TestPerRoutineDispatch:
    def test_each_routine_answered_by_its_own_model(self, make_mixed_service):
        service = make_mixed_service()
        for spec in [GemmSpec(32, 32, 32), GemvSpec(m=32, n=32),
                     SyrkSpec(n=32, k=32), TrsmSpec(m=32, n=32)]:
            assert service.predict(spec) == ROUTINE_TARGETS[spec.routine]

    def test_same_dims_different_routines_no_collision(self, make_mixed_service):
        """GEMV (64, 512) and GEMM (64, 512, 1) share a feature triple
        but resolve through different predictors and cache entries."""
        service = make_mixed_service()
        gemm, gemv = GemmSpec(64, 512, 1), GemvSpec(m=64, n=512)
        assert gemm.dims == gemv.dims
        assert service.predict(gemm) == ROUTINE_TARGETS["gemm"]
        assert service.predict(gemv) == ROUTINE_TARGETS["gemv"]
        # Second round answers each from its own cache, not the other's.
        assert service.predict(gemm) == ROUTINE_TARGETS["gemm"]
        assert service.predict(gemv) == ROUTINE_TARGETS["gemv"]

    def test_unregistered_routine_falls_back_to_default(self, tiny_sim):
        from repro.engine import GemmService

        service = GemmService(oracle_predictor("gemm"),
                              backend=tiny_sim.backend(GRID))
        from repro.blas.adapter import RoutineSimulator

        service.register_backend(
            SyrkSpec, RoutineSimulator(tiny_sim).backend(GRID))
        # No syrk predictor registered: the default (gemm) model scores
        # the dims triple — the historic single-predictor behaviour.
        assert service.predict(SyrkSpec(n=48, k=48)) == \
            ROUTINE_TARGETS["gemm"]
        assert service.run(SyrkSpec(n=48, k=48)).runtime > 0

    def test_register_routine_validates_arguments(self, make_mixed_service):
        service = make_mixed_service()
        with pytest.raises(ValueError, match="exactly one"):
            service.register_routine("gemv")
        with pytest.raises(ValueError, match="exactly one"):
            service.register_routine(
                "gemv", bundle=object(), predictor=oracle_predictor("gemv"))


class TestMixedBatches:
    def test_batch_matches_dedicated_single_routine_services(
            self, make_mixed_service, tiny_sim):
        """Mixed-stream choices are bitwise identical to serving each
        routine's sub-stream through its own dedicated service."""
        mixed = make_mixed_service()
        batch = [r.n_threads for r in mixed.run_batch(MIXED)]

        from repro.blas.adapter import RoutineSimulator
        from repro.engine import GemmService

        routines_backend = RoutineSimulator(tiny_sim).backend(GRID)
        dedicated = []
        for spec in MIXED:
            service = GemmService(
                oracle_predictor(spec.routine),
                backend=(tiny_sim.backend(GRID) if spec.routine == "gemm"
                         else routines_backend))
            dedicated.append(service.run(spec).n_threads)
        assert batch == dedicated

    def test_one_model_pass_per_routine(self, make_mixed_service):
        service = make_mixed_service()
        service.run_batch(MIXED)
        for routine, predictor in service.predictors.items():
            expected = 1 if any(s.routine == routine for s in MIXED) else 0
            assert predictor.n_model_passes == expected

    def test_memoised_flags_per_routine(self, make_mixed_service):
        service = make_mixed_service()
        records = service.run_batch(MIXED)
        # First occurrence of each routine's shape is fresh, repeats hit.
        assert [r.memoised for r in records] == \
            [False, False, False, False, True, True]

    def test_batch_equals_scalar(self, make_mixed_service):
        scalar = make_mixed_service()
        batch = make_mixed_service()
        a = [batch.run(s).n_threads for s in MIXED]
        b = [r.n_threads for r in scalar.run_batch(MIXED)]
        assert a == b

    def test_stats_segmented_by_routine(self, make_mixed_service):
        service = make_mixed_service()
        service.run_batch(MIXED)
        stats = service.stats()
        assert stats["unique_shapes"] == 4
        routines = stats["routines"]
        assert routines["gemm"]["requests"] == 2
        assert routines["gemv"]["requests"] == 2
        assert routines["syrk"]["requests"] == 1
        assert routines["gemm"]["evaluations"] == 1
        # Aggregate counters cover every routine's predictor.
        assert stats["evaluations"] == 4
        assert stats["model_passes"] == 4


class TestRoutineScopedReload:
    @pytest.fixture
    def registry_service(self, routine_bundles, tiny_sim, tmp_path):
        from repro.engine import GemmService
        from repro.train.registry import ModelRegistry

        registry = ModelRegistry(tmp_path / "registry")
        for routine, bundle in routine_bundles.items():
            registry.publish(bundle, routine=routine, machine="tiny")
        return GemmService.from_registry(registry, tiny_sim), registry

    def test_reload_swaps_only_the_target_routine(self, registry_service,
                                                  routine_bundles):
        service, _ = registry_service
        before = {name: p for name, p in service.predictors.items()}
        info = service.reload(routine_bundles["gemv"])
        assert info["routine"] == "gemv"
        after = service.predictors
        assert after["gemv"] is not before["gemv"]
        for name in ("gemm", "syrk", "trsm"):
            assert after[name] is before[name]

    def test_reload_routine_tag_comes_from_bundle_config(
            self, registry_service, routine_bundles):
        service, _ = registry_service
        # No explicit routine argument: the syrk bundle targets syrk.
        old_syrk = service.predictors["syrk"]
        service.reload(routine_bundles["syrk"])
        assert service.predictors["syrk"] is not old_syrk

    def test_choices_unchanged_for_untouched_routines(self, registry_service,
                                                      routine_bundles):
        from tests.routines.conftest import routine_specs

        service, _ = registry_service
        specs = routine_specs("trsm", n=6)
        before = [service.predict(s) for s in specs]
        service.reload(routine_bundles["gemv"])
        assert [service.predict(s) for s in specs] == before

    def test_reload_preserves_other_routines_refiner_state(
            self, routine_bundles, tiny_sim):
        from repro.engine import GemmService

        service = GemmService.from_bundle(routine_bundles["gemm"], tiny_sim,
                                          refine=True)
        service.register_routine("gemv", bundle=routine_bundles["gemv"])
        for _ in range(3):
            service.run(GemmSpec(64, 512, 64))
            service.run(GemvSpec(m=128, n=128))
        assert ("gemm", 64, 512, 64) in service.refiner._shapes
        gemm_state = service.refiner._state_for(64, 512, 64)
        service.reload(routine_bundles["gemv"])
        # The reloaded routine's measurements drop (stale model); every
        # other routine keeps its accumulated statistics.
        assert ("gemv", 128, 128, 1) not in service.refiner._shapes
        kept = service.refiner._shapes[("gemm", 64, 512, 64)]
        assert kept.calls == gemm_state.calls

    def test_reload_can_install_a_new_routine_with_execution(
            self, routine_bundles, tiny_sim):
        """A routine the service never served can arrive via reload();
        it must get the same oracle execution wiring registration
        would have."""
        from repro.engine import GemmService

        service = GemmService.from_bundle(routine_bundles["gemm"], tiny_sim)
        assert not service.dispatcher.has_routine_route("gemv")
        service.reload(routine_bundles["gemv"])
        assert service.dispatcher.has_routine_route("gemv")
        record = service.run(GemvSpec(m=256, n=256))
        assert record.runtime > 0

    def test_counters_monotonic_across_routine_reload(self, registry_service,
                                                      routine_bundles):
        from tests.routines.conftest import routine_specs

        service, _ = registry_service
        service.run_batch(routine_specs("gemv", n=5))
        before = service.stats()["evaluations"]
        service.reload(routine_bundles["gemv"])
        service.run_batch(routine_specs("gemv", n=5))
        after = service.stats()
        assert after["evaluations"] == before + 5
        assert after["reloads"] == 1
