"""One GemmServer, mixed GEMM/GEMV/TRSM/SYRK traffic, per-routine shards."""

import asyncio

import pytest

from repro.blas.adapter import RoutineSimulator
from repro.blas.gemv import GemvSpec
from repro.blas.syrk import SyrkSpec
from repro.blas.trsm import TrsmSpec
from repro.engine import GemmService
from repro.gemm.interface import GemmSpec
from repro.serve import GemmServer, RoutineRouter
from tests.routines.conftest import GRID, ROUTINE_TARGETS, oracle_predictor

MIXED = [GemmSpec(64, 512, 64), GemvSpec(m=64, n=512),
         SyrkSpec(n=96, k=64), TrsmSpec(m=128, n=32)] * 3


def _shards(tiny_sim) -> dict:
    routines_backend = RoutineSimulator(tiny_sim).backend(GRID)
    return {routine: GemmService(
        oracle_predictor(routine),
        backend=(tiny_sim.backend(GRID) if routine == "gemm"
                 else routines_backend))
        for routine in ROUTINE_TARGETS}


class TestRoutineRouter:
    def test_identity_routes_to_routine_name(self):
        router = RoutineRouter()
        assert router.route(GemvSpec(m=8, n=8)) == "gemv"
        assert router.route(GemmSpec(8, 8, 8)) == "gemm"
        assert router.route((8, 8, 8)) == "gemm"

    def test_explicit_routes_with_default(self):
        router = RoutineRouter({"gemv": "level2"}, default="level3")
        assert router.route(GemvSpec(m=8, n=8)) == "level2"
        assert router.route(SyrkSpec(n=8, k=8)) == "level3"

    def test_missing_route_without_default_raises(self):
        router = RoutineRouter({"gemv": "level2"})
        with pytest.raises(KeyError, match="trsm"):
            router.route(TrsmSpec(m=8, n=8))


class TestMixedTrafficServer:
    def _serve(self, shards, specs, **server_kwargs):
        server = GemmServer(shards, router=RoutineRouter(),
                            max_batch=8, max_wait_ms=5.0, **server_kwargs)

        async def run():
            async with server:
                return await server.submit_many(specs)

        return asyncio.run(run()), server

    def test_each_request_resolved_by_its_routines_model(self, tiny_sim):
        records, _ = self._serve(_shards(tiny_sim), MIXED)
        assert [r.n_threads for r in records] == \
            [ROUTINE_TARGETS[s.routine] for s in MIXED]

    def test_choices_bitwise_match_single_routine_path(self, tiny_sim):
        """The acceptance criterion: served mixed-trace choices equal
        the dedicated single-routine services run synchronously."""
        records, _ = self._serve(_shards(tiny_sim), MIXED)
        dedicated = _shards(tiny_sim)
        expected = [dedicated[s.routine].run(s).n_threads for s in MIXED]
        assert [r.n_threads for r in records] == expected

    def test_telemetry_segmented_by_routine(self, tiny_sim):
        _, server = self._serve(_shards(tiny_sim), MIXED)
        routines = server.telemetry.routine_stats()
        assert set(routines) == set(ROUTINE_TARGETS)
        for routine, entry in routines.items():
            assert entry["submitted"] == entry["served"] == 3
            assert entry["rejected"] == entry["failed"] == 0
            assert entry["latency_ms"]["p99_ms"] >= 0
        stats = server.stats()
        assert set(stats["routines"]) == set(ROUTINE_TARGETS)

    def test_rejections_tagged_with_routine(self, tiny_sim):
        shards = _shards(tiny_sim)
        server = GemmServer(shards, router=RoutineRouter(), max_batch=2,
                            max_wait_ms=1.0, max_queue=1, max_pending=1,
                            fair_share=None)

        async def run():
            async with server:
                return await asyncio.gather(
                    *(server.submit(s) for s in MIXED),
                    return_exceptions=True)

        results = asyncio.run(run())
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(served) < len(MIXED)  # overload genuinely triggered
        rejected = sum(entry["rejected"] for entry
                       in server.telemetry.routine_stats().values())
        assert rejected == len(MIXED) - len(served)


class TestServerRoutineReload:
    def test_reload_one_routine_shard_via_kwargs(self, routine_bundles,
                                                 tiny_sim):
        """server.reload(bundle, shard=..., routine=...) swaps a single
        routine's predictor inside a multi-routine shard."""
        service = GemmService.from_bundle(routine_bundles["gemm"], tiny_sim)
        service.register_routine(
            "gemv", bundle=routine_bundles["gemv"],
            backend=RoutineSimulator(tiny_sim).backend(GRID))
        server = GemmServer(service, max_batch=4, max_wait_ms=2.0)

        async def run():
            async with server:
                before = dict(service.predictors)
                info = await server.reload(routine_bundles["gemv"],
                                           routine="gemv")
                record = await server.submit(GemvSpec(m=128, n=128))
                return before, info, record

        before, info, record = asyncio.run(run())
        assert info["default"]["routine"] == "gemv"
        assert service.predictors["gemv"] is not before["gemv"]
        assert service.predictors["gemm"] is before["gemm"]
        assert record.runtime > 0
