"""Registry-driven CLI: mixed-routine batch and serve commands."""

import pytest

from repro.cli import main


@pytest.fixture
def published_registry(routine_bundles, tmp_path):
    from repro.train.registry import ModelRegistry

    root = tmp_path / "registry"
    registry = ModelRegistry(root)
    for routine, bundle in routine_bundles.items():
        registry.publish(bundle, routine=routine, machine="tiny")
    return str(root)


@pytest.fixture
def mixed_file(tmp_path):
    path = tmp_path / "mixed.txt"
    path.write_text("64 512 64\n"
                    "gemv 2048 512\n"
                    "syrk 96 64\n"
                    "trsm 128 32\n"
                    "64 512 64\n"
                    "gemv 2048 512\n")
    return str(path)


class TestRegistryBatch:
    def test_mixed_trace_served_with_baseline(self, published_registry,
                                              mixed_file, capsys):
        rc = main(["batch", "--registry", published_registry, "--baseline",
                   mixed_file])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "batch of 6 calls on tiny" in captured
        assert "gemv (2048, 512, 1)" in captured
        assert "syrk (96, 64, 96)" in captured
        assert "trsm (128, 128, 32)" in captured
        assert "speedup" in captured

    def test_routine_subset(self, published_registry, tmp_path, capsys):
        shapes = tmp_path / "gemv_only.txt"
        shapes.write_text("gemv 256 256\ngemv 512 128\n")
        rc = main(["batch", "--registry", published_registry,
                   "--routine", "gemv", str(shapes)])
        assert rc == 0
        assert "batch of 2 calls" in capsys.readouterr().out

    def test_install_and_registry_are_exclusive(self, published_registry,
                                                mixed_file, capsys):
        with pytest.raises(SystemExit):
            main(["batch", "--install", "x", "--registry",
                  published_registry, mixed_file])


class TestRegistryServe:
    def test_one_server_answers_mixed_trace(self, published_registry,
                                            mixed_file, capsys):
        rc = main(["serve", "--registry", published_registry,
                   "--rate", "4000", "--requests", "24", "--max-batch", "8",
                   mixed_file])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "shards ['gemm', 'gemv', 'syrk', 'trsm']" in captured
        assert "per-routine traffic" in captured
        for routine in ("gemm", "gemv", "syrk", "trsm"):
            assert f"shard {routine}" in captured
        assert "model passes" in captured

    def test_unknown_machine_in_registry_errors(self, published_registry,
                                                mixed_file, capsys):
        rc = main(["serve", "--registry", published_registry,
                   "--machine", "gadi", mixed_file])
        assert rc == 2
        assert "no published routines" in capsys.readouterr().err
