"""Fixtures for the routine-generic runtime suite.

Two tiers:

* **oracle services** — per-routine :class:`ThreadPredictor` instances
  over synthetic models with *distinct* optimal targets per routine, so
  a test can tell from a thread choice alone which routine's model
  answered (the whole point of the refactor);
* **trained bundles** — one real (tiny) installation per registered
  routine, session-cached, for serialize/load/compile round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blas.adapter import RoutineSimulator
from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.core.routines import routine_names
from repro.engine import GemmService, PredictionCache
from repro.ml.registry import candidate_models

GRID = [1, 2, 4, 8, 12, 16]

#: Distinct per-routine optima: a correct dispatch is observable from
#: the thread choice alone.
ROUTINE_TARGETS = {"gemm": 8, "gemv": 2, "syrk": 4, "trsm": 16}


class RoutineOracleModel:
    """Scores ``|n_threads - target|``: argmin is always ``target``."""

    def __init__(self, target: int):
        self.target = target

    def predict(self, X):
        return np.abs(X[:, 3] - self.target)


def oracle_predictor(routine: str, cache_size: int = 64) -> ThreadPredictor:
    return ThreadPredictor(FeatureBuilder("both"), None,
                           RoutineOracleModel(ROUTINE_TARGETS[routine]),
                           GRID, cache=PredictionCache(maxsize=cache_size),
                           routine=routine)


@pytest.fixture
def make_mixed_service(tiny_sim):
    """Factory: a service with all four routines' oracle predictors."""

    def make(**service_kwargs) -> GemmService:
        service = GemmService(oracle_predictor("gemm"),
                              backend=tiny_sim.backend(GRID),
                              **service_kwargs)
        routines = RoutineSimulator(tiny_sim).backend(GRID)
        for routine in ("gemv", "syrk", "trsm"):
            service.register_routine(routine,
                                     predictor=oracle_predictor(routine),
                                     backend=routines)
        return service

    return make


@pytest.fixture(scope="session")
def routine_bundles():
    """One real tiny-node installation per registered routine."""
    from repro.train.matrix import build_workflow

    cands = [c for c in candidate_models(budget="fast")
             if c.name in ("Bayes Regression", "Decision Tree")]
    bundles = {}
    for routine in routine_names():
        workflow = build_workflow(
            routine, "tiny", seed=0, n_shapes=24,
            memory_cap_bytes=8 * 1024 * 1024, thread_grid=GRID,
            candidates=cands, tune_iters=1, cv_folds=2, repeats=3,
            eval_time_s=1e-5)
        bundles[routine] = workflow.run()
    return bundles


def routine_specs(routine: str, n: int = 8, seed: int = 7) -> list:
    """Deterministic distinct problem instances for one routine."""
    from repro.core.routines import get_routine

    info = get_routine(routine)
    rng = np.random.default_rng(seed)
    dims = rng.integers(16, 700, size=(n, info.n_dims))
    return [info.build(*row) for row in np.unique(dims, axis=0)]
