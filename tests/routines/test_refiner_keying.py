"""OnlineRefiner routine keying: mixed traffic must never pool stats."""

import numpy as np
import pytest

from repro.blas.gemv import GemvSpec
from repro.core.online import OnlineRefiner
from repro.gemm.interface import GemmSpec
from tests.routines.conftest import ROUTINE_TARGETS, oracle_predictor


class TestRoutineKeying:
    def test_same_dims_separate_states(self):
        """GEMV (64, 512) and GEMM (64, 512, 1) share a dims triple;
        their measured-runtime statistics must not cross-contaminate."""
        refiner = OnlineRefiner(oracle_predictor("gemm"), seed=0)
        refiner.register_predictor("gemv", oracle_predictor("gemv"))
        # Feed wildly different runtimes for the same dims triple.
        for _ in range(4):
            refiner.record(64, 512, 1, 8, 1.0)                      # gemm
            refiner.record(64, 512, 1, 8, 1e-4, routine="gemv")     # gemv
        gemm_state = refiner._state_for(64, 512, 1)
        gemv_state = refiner._state_for(64, 512, 1, routine="gemv")
        assert gemm_state is not gemv_state
        assert gemm_state.mean(8) == pytest.approx(1.0)
        assert gemv_state.mean(8) == pytest.approx(1e-4)

    def test_prior_comes_from_each_routines_model(self):
        refiner = OnlineRefiner(oracle_predictor("gemm"), seed=0)
        refiner.register_predictor("gemv", oracle_predictor("gemv"))
        assert refiner.choose_threads(64, 512, 1) == \
            ROUTINE_TARGETS["gemm"]
        assert refiner.choose_threads(64, 512, 1, routine="gemv") == \
            ROUTINE_TARGETS["gemv"]

    def test_legacy_api_unchanged(self):
        """Routine omitted = the predictor's own routine (gemm)."""
        refiner = OnlineRefiner(oracle_predictor("gemm"), seed=0)
        assert refiner.choose_threads(32, 32, 32) == ROUTINE_TARGETS["gemm"]
        refiner.record(32, 32, 32, 8, 0.5)
        assert refiner.steady_choice(32, 32, 32) in refiner.grid

    def test_replace_predictor_drops_only_that_routine(self):
        refiner = OnlineRefiner(oracle_predictor("gemm"), seed=0)
        refiner.register_predictor("gemv", oracle_predictor("gemv"))
        refiner.record(10, 10, 10, 8, 0.1)
        refiner.record(10, 10, 1, 2, 0.2, routine="gemv")
        refiner.register_predictor("gemv", oracle_predictor("gemv"))
        assert ("gemm", 10, 10, 10) in refiner._shapes
        assert ("gemv", 10, 10, 1) not in refiner._shapes

    def test_run_uses_spec_routine(self, tiny_sim):
        from repro.blas.adapter import RoutineSimulator

        refiner = OnlineRefiner(oracle_predictor("gemm"), seed=0)
        refiner.register_predictor("gemv", oracle_predictor("gemv"))
        oracle = RoutineSimulator(tiny_sim)
        refiner.run(GemvSpec(m=256, n=256), oracle)
        refiner.run(GemmSpec(256, 256, 1), tiny_sim)
        assert ("gemv", 256, 256, 1) in refiner._shapes
        assert ("gemm", 256, 256, 1) in refiner._shapes


class TestServiceRefineOnMixedTraffic:
    def test_mixed_stream_converges_per_routine(self, make_mixed_service,
                                                tiny_sim):
        """Refinement on interleaved GEMM+GEMV traffic keeps separate
        measurement pools and steady choices stay near each routine's
        optimum."""
        service = make_mixed_service(refine=True, repeats=2)
        gemm, gemv = GemmSpec(64, 512, 1), GemvSpec(m=64, n=512)
        for _ in range(30):
            service.run(gemm)
            service.run(gemv)
        steady_gemm = service.refiner.steady_choice(64, 512, 1)
        steady_gemv = service.refiner.steady_choice(64, 512, 1,
                                                    routine="gemv")
        # GEMV is bandwidth-bound: its refined choice must stay small,
        # and in particular must not be dragged toward GEMM's pool.
        from repro.blas.adapter import RoutineSimulator

        oracle = RoutineSimulator(tiny_sim)
        assert oracle.true_time(gemv, steady_gemv) <= \
            oracle.true_time(gemv, 16) * 1.05
        assert tiny_sim.true_time(gemm, steady_gemm) <= \
            tiny_sim.true_time(gemm, 16) * 1.05
