"""The central routine registry and the RoutineSpec protocol."""

import pytest

from repro.blas.gemv import GemvSpec
from repro.blas.syrk import SyrkSpec
from repro.blas.trsm import TrsmSpec
from repro.core.routines import (DEFAULT_ROUTINE, REGISTRY, RoutineInfo,
                                 RoutineRegistry, RoutineSpec, build_spec,
                                 get_routine, routine_names, routine_of)
from repro.engine.cache import routine_key
from repro.gemm.interface import GemmSpec


class TestRegistryContents:
    def test_all_four_routines_registered(self):
        assert routine_names() == ("gemm", "gemv", "syrk", "trsm")

    def test_spec_types_resolve_lazily(self):
        assert get_routine("gemm").spec_type is GemmSpec
        assert get_routine("gemv").spec_type is GemvSpec
        assert get_routine("syrk").spec_type is SyrkSpec
        assert get_routine("trsm").spec_type is TrsmSpec

    def test_unknown_routine_raises(self):
        with pytest.raises(KeyError, match="unknown routine"):
            get_routine("getrf")

    def test_contains(self):
        assert "gemv" in REGISTRY and "getrf" not in REGISTRY

    def test_duplicate_registration_rejected(self):
        registry = RoutineRegistry()
        info = RoutineInfo("x", "repro.gemm.interface:GemmSpec",
                           ("m", "k", "n"), lambda m, k, n: (m, k, n),
                           lambda m, k, n: (m, k, n))
        registry.register(info)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(info)


class TestSpecProtocol:
    def test_every_spec_satisfies_routine_spec(self):
        for routine in routine_names():
            spec = get_routine(routine).build(
                *range(8, 8 + get_routine(routine).n_dims))
            assert isinstance(spec, RoutineSpec)
            assert routine_of(spec) == routine
            assert spec.key()[0] == routine
            assert len(spec.dims) == 3
            assert spec.flops > 0 and spec.memory_bytes > 0

    def test_routine_of_defaults_bare_triples_to_gemm(self):
        assert routine_of((8, 8, 8)) == DEFAULT_ROUTINE

    def test_keys_cannot_alias_across_routines(self):
        """Same feature dims, different routines: distinct keys."""
        gemm = GemmSpec(64, 512, 1)
        gemv = GemvSpec(m=64, n=512)
        assert gemm.dims == gemv.dims
        assert gemm.key() != gemv.key()
        assert routine_key(gemm) != routine_key(gemv)
        assert routine_key(gemv) == ("gemv", 64, 512, 1)


class TestBuilders:
    def test_build_natural_dims(self):
        assert build_spec("gemv", 100, 200) == GemvSpec(m=100, n=200)
        assert build_spec("syrk", 100, 200) == SyrkSpec(n=100, k=200)
        assert build_spec("trsm", 100, 200) == TrsmSpec(m=100, n=200)
        assert build_spec("gemm", 1, 2, 3) == GemmSpec(1, 2, 3)

    def test_build_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="takes 2 dimensions"):
            build_spec("gemv", 1, 2, 3)

    def test_from_gemm_matches_historic_campaign_mapping(self):
        """The matrix trainer's sampled-GEMM -> spec conventions."""
        sampled = GemmSpec(100, 20, 30, dtype="float64")
        assert get_routine("gemv").from_gemm(sampled) == \
            GemvSpec(m=100, n=20, dtype="float64")
        assert get_routine("syrk").from_gemm(sampled) == \
            SyrkSpec(n=100, k=20, dtype="float64")
        assert get_routine("trsm").from_gemm(sampled) == \
            TrsmSpec(m=100, n=30, dtype="float64")
        assert get_routine("gemm").from_gemm(sampled) == sampled

    def test_feature_dims_inverts_spec_dims(self):
        for routine in routine_names():
            info = get_routine(routine)
            spec = info.build(*range(9, 9 + info.n_dims))
            assert info.from_feature_dims(spec.dims) == spec


class TestTraceFileParsing:
    def test_mixed_lines(self, tmp_path):
        from repro.cli import parse_trace_file

        path = tmp_path / "mixed.txt"
        path.write_text("64 512 64\n"
                        "gemv 2048, 512  # bandwidth-bound\n"
                        "syrk 96 64\n"
                        "trsm 128 32\n")
        specs = parse_trace_file(str(path))
        assert [routine_of(s) for s in specs] == \
            ["gemm", "gemv", "syrk", "trsm"]
        assert specs[1] == GemvSpec(m=2048, n=512)

    def test_wrong_arity_line_raises_with_lineno(self, tmp_path):
        from repro.cli import parse_trace_file

        path = tmp_path / "bad.txt"
        path.write_text("gemv 10 20 30\n")
        with pytest.raises(ValueError, match="bad.txt:1"):
            parse_trace_file(str(path))

    def test_dtype_threads_through(self, tmp_path):
        from repro.cli import parse_trace_file

        path = tmp_path / "one.txt"
        path.write_text("syrk 8 8\n")
        (spec,) = parse_trace_file(str(path), dtype="float64")
        assert spec.dtype == "float64"
