"""Every registered routine: install -> serialize -> load -> predict.

The property the registry layers rely on: a routine bundle survives the
full persistence cycle (plain directory and versioned registry) with
bitwise-identical predictions, on both the object path and the compiled
plan, and its routine tag rides along everywhere.
"""

import numpy as np
import pytest

from repro.core.routines import routine_names
from repro.core.serialize import load_bundle, save_bundle
from tests.routines.conftest import routine_specs


@pytest.mark.parametrize("routine", routine_names())
class TestRoundTrip:
    def test_config_carries_the_routine_tag(self, routine_bundles, routine):
        assert routine_bundles[routine].config.routine == routine

    def test_save_load_predicts_bitwise(self, routine_bundles, routine,
                                        tmp_path):
        bundle = routine_bundles[routine]
        save_bundle(bundle, tmp_path / routine)
        loaded = load_bundle(tmp_path / routine)
        assert loaded.config.routine == routine
        specs = routine_specs(routine)
        fresh = loaded.predictor(cache_size=64)
        orig = bundle.predictor(cache_size=64)
        for spec in specs:
            assert fresh.predict_threads(*spec.dims) == \
                orig.predict_threads(*spec.dims)

    def test_predictor_cache_keys_are_routine_qualified(
            self, routine_bundles, routine):
        predictor = routine_bundles[routine].predictor(cache_size=8)
        spec = routine_specs(routine, n=1)[0]
        predictor.predict_threads(*spec.dims)
        (key,) = predictor.cache.keys()
        assert key[0] == routine

    def test_compiled_plan_matches_object_path_bitwise(
            self, routine_bundles, routine):
        """The compile layer lowers per routine: thread choices through
        the fused plan equal the object pipeline/model walk exactly."""
        bundle = routine_bundles[routine]
        specs = routine_specs(routine, n=10)
        compiled = bundle.predictor(cache_size=64, compiled=True)
        objects = bundle.predictor(cache_size=64, compiled=False)
        assert compiled.compiled and not objects.compiled
        dims = [s.dims for s in specs]
        np.testing.assert_array_equal(
            compiled.predict_threads_batch(dims),
            objects.predict_threads_batch(dims))
        for spec in specs:
            np.testing.assert_array_equal(
                compiled.predicted_runtimes(*spec.dims),
                objects.predicted_runtimes(*spec.dims))

    def test_registry_publish_load_predict(self, routine_bundles, routine,
                                           tmp_path):
        from repro.train.registry import ModelRegistry

        registry = ModelRegistry(tmp_path / "reg")
        bundle = routine_bundles[routine]
        record = registry.publish(bundle, routine=routine, machine="tiny")
        assert record.routine == routine and record.version == 1
        loaded = registry.load(routine, "tiny")
        specs = routine_specs(routine)
        a = loaded.predictor(cache_size=64)
        b = bundle.predictor(cache_size=64)
        for spec in specs:
            assert a.predict_threads(*spec.dims) == \
                b.predict_threads(*spec.dims)


class TestDatasetTagging:
    def test_gathered_datasets_are_routine_tagged(self):
        from repro.blas.adapter import RoutineSimulator, _RoutineGatherer
        from repro.blas.syrk import SyrkSpec
        from repro.machine.noise import QUIET
        from repro.machine.presets import tiny_test_node
        from repro.machine.simulator import MachineSimulator

        oracle = RoutineSimulator(
            MachineSimulator(tiny_test_node(), noise=QUIET))
        gatherer = _RoutineGatherer(oracle, [1, 2, 4], repeats=2)
        data = gatherer.gather_for_specs([SyrkSpec(n=32, k=16)])
        assert data.routine == "syrk"
        assert all(r.routine == "syrk" for r in data.records())
        assert isinstance(data.records()[0].spec, SyrkSpec)

    def test_json_roundtrip_keeps_routine(self):
        from repro.core.dataset import TimingDataset, TimingRecord

        data = TimingDataset.from_records(
            [TimingRecord(8, 4, 1, 2, 0.5, routine="gemv")])
        again = TimingDataset.from_json(data.to_json())
        assert again.routine == "gemv"
        assert again.select([True]).routine == "gemv"

    def test_mixed_routine_records_rejected(self):
        from repro.core.dataset import TimingDataset, TimingRecord

        with pytest.raises(ValueError, match="mixed-routine"):
            TimingDataset.from_records([
                TimingRecord(8, 4, 1, 2, 0.5, routine="gemv"),
                TimingRecord(8, 4, 1, 2, 0.5, routine="gemm")])

    def test_merge_rejects_cross_routine(self):
        from repro.core.dataset import TimingDataset, TimingRecord

        a = TimingDataset.from_records([TimingRecord(8, 4, 1, 2, 0.5)])
        b = TimingDataset.from_records(
            [TimingRecord(8, 4, 1, 2, 0.5, routine="gemv")])
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)
