"""StandardScaler behaviour."""

import numpy as np
import pytest

from repro.preprocessing.standard import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.standard_normal((200, 3)) * [1, 10, 100] + [5, -3, 50]
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, rtol=1e-12)

    def test_transform_uses_train_statistics(self, rng):
        train = rng.standard_normal((100, 2))
        test = rng.standard_normal((50, 2)) + 10.0
        scaler = StandardScaler().fit(train)
        Z = scaler.transform(test)
        # Test data shifted by +10 stays shifted after scaling by train stats.
        assert Z.mean() > 5.0

    def test_constant_feature_passthrough(self):
        X = np.column_stack([np.full(10, 4.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_inverse_round_trip(self, rng):
        X = rng.standard_normal((50, 4)) * 7 + 3
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)),
                                   X, rtol=1e-12)

    def test_mean_only_mode(self, rng):
        X = rng.standard_normal((100, 2)) * 5
        Z = StandardScaler(with_std=False).fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert Z.std(axis=0)[0] == pytest.approx(X.std(axis=0)[0])

    def test_feature_count_guard(self, rng):
        scaler = StandardScaler().fit(rng.standard_normal((10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.standard_normal((5, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.eye(2))
