"""Correlation-based feature pruning (paper Section IV-C)."""

import numpy as np
import pytest

from repro.preprocessing.correlation import CorrelationPruner, correlation_prune


class TestCorrelationPrune:
    def test_keeps_independent_features(self, rng):
        X = rng.standard_normal((500, 4))
        keep, dropped = correlation_prune(X, threshold=0.8)
        assert list(keep) == [0, 1, 2, 3]
        assert dropped == []

    def test_drops_duplicated_feature(self, rng):
        x = rng.standard_normal(300)
        X = np.column_stack([x, x + 1e-9 * rng.standard_normal(300),
                             rng.standard_normal(300)])
        keep, dropped = correlation_prune(X, threshold=0.8)
        assert len(keep) == 2
        assert 2 in keep  # the independent one survives
        assert len(dropped) == 1

    def test_victim_has_larger_total_correlation(self, rng):
        """Paper rule: within a pair, drop the feature more correlated
        with everything else."""
        base = rng.standard_normal(1000)
        other = rng.standard_normal(1000)
        f0 = base
        f1 = 0.95 * base + 0.05 * other       # correlated with f0 AND f2
        f2 = 0.9 * base + 0.4 * other
        X = np.column_stack([f0, f1, f2])
        keep, dropped = correlation_prune(X, threshold=0.8)
        victims = [v for v, _, _ in dropped]
        assert 1 in victims  # the hub feature goes first

    def test_anticorrelation_counts(self, rng):
        x = rng.standard_normal(200)
        X = np.column_stack([x, -x])
        keep, _ = correlation_prune(X, threshold=0.8)
        assert len(keep) == 1

    def test_constant_feature_survives(self, rng):
        X = np.column_stack([np.ones(100), rng.standard_normal(100)])
        keep, _ = correlation_prune(X, threshold=0.8)
        assert 0 in keep

    def test_single_feature(self):
        keep, dropped = correlation_prune(np.arange(10.0).reshape(-1, 1))
        assert list(keep) == [0] and dropped == []

    def test_threshold_validation(self, rng):
        with pytest.raises(ValueError):
            correlation_prune(rng.standard_normal((10, 2)), threshold=0.0)


class TestCorrelationPruner:
    def test_transform_selects_kept_columns(self, rng):
        x = rng.standard_normal(300)
        X = np.column_stack([x, x, rng.standard_normal(300)])
        pruner = CorrelationPruner(threshold=0.8).fit(X)
        Z = pruner.transform(X)
        assert Z.shape == (300, 2)

    def test_transform_applies_same_selection_to_new_data(self, rng):
        x = rng.standard_normal(300)
        X = np.column_stack([x, x, rng.standard_normal(300)])
        pruner = CorrelationPruner(threshold=0.8).fit(X)
        fresh = rng.standard_normal((10, 3))
        assert pruner.transform(fresh).shape == (10, 2)

    def test_feature_count_guard(self, rng):
        pruner = CorrelationPruner().fit(rng.standard_normal((20, 3)))
        with pytest.raises(ValueError):
            pruner.transform(rng.standard_normal((5, 2)))

    def test_paper_feature_set_prunes_something(self):
        """On the actual Table II features — after the Yeo-Johnson +
        standardise steps of the paper's pipeline — heavy correlation
        exists (e.g. m*k vs m*k*n over the sampled domain) so pruning
        fires.  (On the raw skewed features Pearson correlation is
        diluted, which is exactly why the paper transforms first.)"""
        from repro.core.features import FeatureBuilder
        from repro.preprocessing.standard import StandardScaler
        from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer
        from repro.sampling.domain import GemmDomainSampler

        sampler = GemmDomainSampler(memory_cap_bytes=100 * 2 ** 20, seed=0)
        specs = sampler.sample(150)
        fb = FeatureBuilder("both")
        rows = []
        for s in specs:
            for p in (1, 4, 16):
                rows.append((s.m, s.k, s.n, p))
        m, k, n, p = map(np.array, zip(*rows))
        X = fb.build(m, k, n, p)
        X = YeoJohnsonTransformer().fit_transform(X)
        X = StandardScaler().fit_transform(X)
        keep, dropped = correlation_prune(X, threshold=0.8)
        assert len(dropped) > 0
        assert len(keep) >= 4
