"""Local Outlier Factor: local and global outlier detection."""

import numpy as np
import pytest

from repro.preprocessing.lof import LocalOutlierFactor


@pytest.fixture
def cluster_with_outlier(rng):
    cluster = rng.standard_normal((100, 2)) * 0.3
    outlier = np.array([[8.0, 8.0]])
    return np.vstack([cluster, outlier])


class TestLofScores:
    def test_global_outlier_scores_high(self, cluster_with_outlier):
        lof = LocalOutlierFactor(n_neighbors=10).fit(cluster_with_outlier)
        assert lof.lof_scores_[-1] > 2.0
        assert np.median(lof.lof_scores_[:-1]) < 1.3

    def test_uniform_data_scores_near_one(self, rng):
        X = rng.uniform(0, 1, size=(400, 2))
        lof = LocalOutlierFactor(n_neighbors=15).fit(X)
        assert np.median(lof.lof_scores_) == pytest.approx(1.0, abs=0.1)

    def test_local_outlier_detected(self, rng):
        """A point that is globally unremarkable but locally isolated:
        the scenario the paper cites LOF for (vs statistical methods)."""
        dense = rng.standard_normal((200, 2)) * 0.1          # tight cluster
        sparse = rng.standard_normal((50, 2)) * 3 + [20, 0]  # loose cluster
        local_out = np.array([[1.2, 1.2]])  # near dense cluster but outside
        X = np.vstack([dense, sparse, local_out])
        lof = LocalOutlierFactor(n_neighbors=10).fit(X)
        # The local outlier scores higher than a typical sparse point.
        assert lof.lof_scores_[-1] > np.percentile(lof.lof_scores_[200:250], 90)

    def test_chunking_consistent(self, cluster_with_outlier):
        a = LocalOutlierFactor(n_neighbors=5, chunk_size=7).fit(cluster_with_outlier)
        b = LocalOutlierFactor(n_neighbors=5, chunk_size=512).fit(cluster_with_outlier)
        np.testing.assert_allclose(a.lof_scores_, b.lof_scores_, rtol=1e-9)


class TestFiltering:
    def test_contamination_flags_exact_fraction(self, rng):
        X = rng.standard_normal((200, 3))
        lof = LocalOutlierFactor(n_neighbors=10, contamination=0.1).fit(X)
        assert (~lof.inlier_mask_).sum() == 20

    def test_threshold_mode(self, cluster_with_outlier):
        lof = LocalOutlierFactor(n_neighbors=10, threshold=2.0).fit(cluster_with_outlier)
        assert not lof.inlier_mask_[-1]

    def test_fit_predict_convention(self, cluster_with_outlier):
        labels = LocalOutlierFactor(n_neighbors=10, threshold=2.0) \
            .fit_predict(cluster_with_outlier)
        assert set(np.unique(labels)) <= {-1, 1}
        assert labels[-1] == -1

    def test_filter_aligns_arrays(self, cluster_with_outlier):
        y = np.arange(len(cluster_with_outlier), dtype=float)
        lof = LocalOutlierFactor(n_neighbors=10, threshold=2.0)
        Xf, yf = lof.filter(cluster_with_outlier, y)
        assert len(Xf) == len(yf) < len(y)
        assert 100.0 not in yf  # the outlier row went away

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor(n_neighbors=0).fit(np.eye(3))
        with pytest.raises(ValueError):
            LocalOutlierFactor(contamination=0.9).fit(np.eye(3))
        with pytest.raises(ValueError):
            LocalOutlierFactor().fit(np.zeros((1, 2)))
