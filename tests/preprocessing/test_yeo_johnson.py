"""Yeo-Johnson transform and MLE lambda estimation."""

import numpy as np
import pytest

from repro.preprocessing.yeo_johnson import (YeoJohnsonTransformer, yeo_johnson,
                                             yeo_johnson_inverse,
                                             yeo_johnson_mle_lambda)


class TestTransformFunction:
    def test_lambda_one_is_identity(self, rng):
        x = rng.standard_normal(100)
        np.testing.assert_allclose(yeo_johnson(x, 1.0), x, atol=1e-12)

    def test_lambda_zero_is_log1p_on_positives(self):
        x = np.array([0.0, 1.0, 9.0])
        np.testing.assert_allclose(yeo_johnson(x, 0.0), np.log1p(x))

    def test_lambda_two_is_neg_log1p_on_negatives(self):
        x = np.array([-0.5, -3.0])
        np.testing.assert_allclose(yeo_johnson(x, 2.0), -np.log1p(-x))

    def test_monotone(self, rng):
        x = np.sort(rng.standard_normal(200) * 3)
        for lam in (-1.0, 0.0, 0.5, 1.0, 2.0, 3.0):
            z = yeo_johnson(x, lam)
            assert (np.diff(z) > -1e-12).all(), lam

    def test_continuous_at_lambda_boundaries(self, rng):
        x = rng.standard_normal(50)
        np.testing.assert_allclose(yeo_johnson(x, 1e-12), yeo_johnson(x, 0.0),
                                   atol=1e-8)
        np.testing.assert_allclose(yeo_johnson(x, 2.0 - 1e-12),
                                   yeo_johnson(x, 2.0), atol=1e-8)

    @pytest.mark.parametrize("lam", [-1.5, 0.0, 0.5, 1.0, 2.0, 3.5])
    def test_inverse_round_trip(self, lam, rng):
        x = rng.standard_normal(100) * 2
        z = yeo_johnson(x, lam)
        np.testing.assert_allclose(yeo_johnson_inverse(z, lam), x, atol=1e-8)


class TestMleLambda:
    def test_gaussian_input_keeps_lambda_near_one(self, rng):
        x = rng.standard_normal(3000)
        assert yeo_johnson_mle_lambda(x) == pytest.approx(1.0, abs=0.15)

    def test_right_skew_gets_lambda_below_one(self, rng):
        x = rng.exponential(1.0, size=3000)  # heavy right skew
        assert yeo_johnson_mle_lambda(x) < 0.7

    def test_left_skew_gets_lambda_above_one(self, rng):
        x = -rng.exponential(1.0, size=3000)
        assert yeo_johnson_mle_lambda(x) > 1.3

    def test_constant_feature_identity(self):
        assert yeo_johnson_mle_lambda(np.full(10, 3.0)) == 1.0


class TestTransformer:
    def test_reduces_skewness(self, rng):
        """The paper's Fig. 4: skewed features become near-Gaussian."""
        X = np.column_stack([rng.exponential(1.0, 2000),
                             rng.lognormal(0, 1, 2000)])
        tf = YeoJohnsonTransformer().fit(X)
        reduction = tf.skewness_reduction(X)
        assert (reduction > 0.5).all()

    def test_per_feature_lambdas(self, rng):
        X = np.column_stack([rng.standard_normal(2000),
                             rng.exponential(1.0, 2000)])
        tf = YeoJohnsonTransformer().fit(X)
        assert abs(tf.lambdas_[0] - 1.0) < 0.2
        assert tf.lambdas_[1] < 0.7

    def test_standardize_option(self, rng):
        X = rng.exponential(1.0, (500, 2))
        Z = YeoJohnsonTransformer(standardize=True).fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, rtol=1e-10)

    def test_feature_count_guard(self, rng):
        tf = YeoJohnsonTransformer().fit(rng.standard_normal((50, 3)))
        with pytest.raises(ValueError):
            tf.transform(rng.standard_normal((10, 2)))
