"""Transformer pipeline semantics."""

import numpy as np
import pytest

from repro.preprocessing.correlation import CorrelationPruner
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.standard import StandardScaler
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer


class TestPipeline:
    def test_applies_stages_in_order(self, rng):
        X = rng.exponential(1.0, (200, 3))
        pipe = Pipeline([("yj", YeoJohnsonTransformer()),
                         ("scale", StandardScaler())]).fit(X)
        Z = pipe.transform(X)
        # Final stage output is standardised.
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, rtol=1e-10)

    def test_matches_manual_chaining(self, rng):
        X = rng.exponential(1.0, (100, 2))
        yj = YeoJohnsonTransformer().fit(X)
        mid = yj.transform(X)
        scaler = StandardScaler().fit(mid)
        expected = scaler.transform(mid)
        pipe = Pipeline([("yj", YeoJohnsonTransformer()),
                         ("scale", StandardScaler())]).fit(X)
        np.testing.assert_allclose(pipe.transform(X), expected, rtol=1e-12)

    def test_from_fitted_does_not_refit(self, rng):
        X = rng.standard_normal((100, 2))
        scaler = StandardScaler().fit(X)
        pipe = Pipeline.from_fitted([("scale", scaler)])
        shifted = X + 100.0
        # Uses the original statistics, not the shifted data's.
        assert pipe.transform(shifted).mean() > 50.0

    def test_named_step_lookup(self):
        scaler = StandardScaler()
        pipe = Pipeline([("scale", scaler)])
        assert pipe.named_step("scale") is scaler
        with pytest.raises(KeyError):
            pipe.named_step("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_unfitted_transform_raises(self):
        pipe = Pipeline([("scale", StandardScaler())])
        with pytest.raises(RuntimeError):
            pipe.transform(np.eye(2))

    def test_len(self):
        assert len(Pipeline([("s", StandardScaler()),
                             ("c", CorrelationPruner())])) == 2

    def test_shape_change_through_pruner(self, rng):
        x = rng.standard_normal(200)
        X = np.column_stack([x, x, rng.standard_normal(200)])
        pipe = Pipeline([("scale", StandardScaler()),
                         ("prune", CorrelationPruner(threshold=0.8))]).fit(X)
        assert pipe.transform(X).shape[1] == 2
