"""Property-based tests for the BLAS extension routines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.gemv import GemvSpec, gemv_reference
from repro.blas.syrk import SyrkSpec, syrk_reference

dims = st.integers(min_value=1, max_value=24)


@settings(max_examples=30, deadline=None)
@given(n=dims, k=dims, alpha=st.floats(-2, 2, allow_nan=False), seed=st.integers(0, 20))
def test_syrk_matches_dense_product_on_triangle(n, k, alpha, seed):
    spec = SyrkSpec(n=n, k=k, dtype="float64", alpha=alpha, beta=0.0)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, k))
    c = rng.standard_normal((n, n))
    syrk_reference(spec, a, c)
    expected = alpha * a @ a.T
    tri = np.tril_indices(n)
    np.testing.assert_allclose(c[tri], expected[tri], rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(n=dims, k=dims)
def test_syrk_work_fraction_bounds(n, k):
    spec = SyrkSpec(n=n, k=k)
    assert 0.5 <= spec.work_fraction <= 1.0
    assert spec.flops <= spec.equivalent_gemm().flops


@settings(max_examples=30, deadline=None)
@given(m=dims, n=dims, alpha=st.floats(-2, 2, allow_nan=False),
       beta=st.floats(-2, 2, allow_nan=False), seed=st.integers(0, 20))
def test_gemv_matches_numpy(m, n, alpha, beta, seed):
    spec = GemvSpec(m=m, n=n, dtype="float64", alpha=alpha, beta=beta)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    x = rng.standard_normal(n)
    y0 = rng.standard_normal(m)
    y = y0.copy()
    gemv_reference(spec, a, x, y)
    np.testing.assert_allclose(y, alpha * a @ x + beta * y0, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(m=dims, n=dims)
def test_gemv_memory_and_flops_positive(m, n):
    spec = GemvSpec(m=m, n=n)
    assert spec.flops > 0
    assert spec.memory_bytes > 0
    assert spec.equivalent_gemm().dims == (m, n, 1)
