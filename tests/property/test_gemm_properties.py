"""Property-based tests on the GEMM substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm.blocked import BlockSizes, gemm_blocked
from repro.gemm.counts import gemm_flops, gemm_memory_bytes
from repro.gemm.interface import GemmSpec
from repro.gemm.partition import Partition2D, factor_grid, split_range
from repro.gemm.reference import gemm_reference

dims = st.integers(min_value=1, max_value=40)
threads = st.integers(min_value=1, max_value=32)


@given(m=dims, k=dims, n=dims)
def test_flops_positive_and_symmetric_in_mn(m, k, n):
    assert gemm_flops(m, k, n) > 0
    assert gemm_flops(m, k, n) == gemm_flops(n, k, m)


@given(m=dims, k=dims, n=dims)
def test_memory_symmetric_under_mn_swap(m, k, n):
    # mk+kn+mn is invariant under swapping m and n.
    assert gemm_memory_bytes(m, k, n) == gemm_memory_bytes(n, k, m)


@given(extent=st.integers(0, 500), parts=st.integers(1, 50))
def test_split_range_partitions(extent, parts):
    bounds = split_range(extent, parts)
    assert len(bounds) == parts
    assert bounds[0][0] == 0 and bounds[-1][1] == extent
    sizes = [hi - lo for lo, hi in bounds]
    assert all(s >= 0 for s in sizes)
    assert max(sizes) - min(sizes) <= 1
    for (_, a1), (b0, _) in zip(bounds, bounds[1:]):
        assert a1 == b0


@given(p=st.integers(1, 64), m=dims, n=dims)
def test_factor_grid_is_factorisation(p, m, n):
    pm, pn = factor_grid(p, m, n)
    assert pm * pn == p
    assert pm >= 1 and pn >= 1


@given(m=dims, k=dims, n=dims, p=threads)
def test_partition_blocks_tile_c(m, k, n, p):
    part = Partition2D.for_threads(m, k, n, p)
    covered = np.zeros((m, n), dtype=int)
    for (r0, r1), (c0, c1) in part.thread_blocks():
        covered[r0:r1, c0:c1] += 1
    assert (covered == 1).all()


@given(m=dims, k=dims, n=dims, p=threads)
def test_packed_volume_at_least_operands(m, k, n, p):
    """Replication can only increase the packed volume."""
    part = Partition2D.for_threads(m, k, n, p)
    assert part.packed_a_volume() >= m * k
    assert part.packed_b_volume() >= k * n


@settings(max_examples=25, deadline=None)
@given(m=st.integers(1, 24), k=st.integers(1, 24), n=st.integers(1, 24),
       alpha=st.floats(-2, 2, allow_nan=False),
       beta=st.floats(-2, 2, allow_nan=False),
       seed=st.integers(0, 10))
def test_blocked_always_matches_reference(m, k, n, alpha, beta, seed):
    spec = GemmSpec(m, k, n, dtype="float64", alpha=alpha, beta=beta)
    a, b, c = spec.random_operands(rng=seed)
    expected = c.copy()
    gemm_reference(spec, a, b, expected)
    got = c.copy()
    gemm_blocked(spec, a, b, got, blocks=BlockSizes(mc=8, kc=8, nc=8))
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)
