"""Property-based tests on the machine simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm.interface import GemmSpec
from repro.machine.affinity import AffinityPolicy, place_threads
from repro.machine.noise import QUIET
from repro.machine.presets import gadi_topology, tiny_test_node
from repro.machine.simulator import MachineSimulator

dims = st.integers(min_value=1, max_value=2000)


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, p=st.integers(1, 16))
def test_cost_model_always_positive_finite(m, k, n, p):
    sim = MachineSimulator(tiny_test_node(), noise=QUIET, seed=0)
    t = sim.true_time(GemmSpec(m, k, n), p)
    assert np.isfinite(t) and t > 0


@settings(max_examples=30, deadline=None)
@given(m=dims, k=dims, n=dims)
def test_breakdown_components_consistent(m, k, n):
    sim = MachineSimulator(tiny_test_node(), noise=QUIET, seed=0)
    for p in (1, 4, 16):
        bd = sim.cost_model.breakdown(GemmSpec(m, k, n), p)
        assert bd.total >= bd.kernel
        assert bd.sync >= 0 and bd.copy >= 0


@settings(max_examples=30, deadline=None)
@given(p=st.integers(1, 96),
       policy=st.sampled_from([AffinityPolicy.CORES, AffinityPolicy.THREADS]))
def test_placement_invariants(p, policy):
    topo = gadi_topology()
    placement = place_threads(topo, p, policy)
    assert placement.cores_used <= min(p, topo.physical_cores)
    assert placement.cores_used * placement.max_threads_per_core >= p
    assert 1 <= placement.sockets_used <= topo.sockets
    assert len(placement.cpu_ids) == p
    assert len(set(placement.cpu_ids)) == p  # no CPU double-booked


@settings(max_examples=20, deadline=None)
@given(m=dims, k=dims, n=dims, p=st.integers(1, 16),
       i=st.integers(0, 5), seed=st.integers(0, 50))
def test_simulator_reproducible(m, k, n, p, i, seed):
    spec = GemmSpec(m, k, n)
    a = MachineSimulator(tiny_test_node(), seed=seed).run(spec, p, iteration=i)
    b = MachineSimulator(tiny_test_node(), seed=seed).run(spec, p, iteration=i)
    assert a.time == b.time


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 300), k=st.integers(1, 300), n=st.integers(1, 300))
def test_noise_never_negative(m, k, n):
    sim = MachineSimulator(tiny_test_node(), seed=0)
    for i in range(3):
        assert sim.run(GemmSpec(m, k, n), 4, iteration=i).time > 0
