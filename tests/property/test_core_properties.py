"""Property tests on the ADSALA core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AdsalaConfig
from repro.core.dataset import TimingDataset
from repro.core.features import FeatureBuilder

dims = st.integers(min_value=1, max_value=10000)
threads = st.integers(min_value=1, max_value=256)


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, p=threads)
def test_feature_identities(m, k, n, p):
    """The Table II features satisfy their defining algebra exactly."""
    fb = FeatureBuilder("both")
    row = dict(zip(fb.names, fb.build([m], [k], [n], [p])[0]))
    assert row["m*k"] == m * k
    assert row["m*k*n"] == m * k * n
    assert row["m*k+k*n+m*n"] == m * k + k * n + m * n
    np.testing.assert_allclose(row["m*k*n/p"], m * k * n / p)
    np.testing.assert_allclose(row["(m*k+k*n+m*n)/p"],
                               (m * k + k * n + m * n) / p)
    # Group 1 is independent of p; group 2 scales as 1/p.
    row2 = dict(zip(fb.names, fb.build([m], [k], [n], [2 * p])[0]))
    assert row2["m*k*n"] == row["m*k*n"]
    np.testing.assert_allclose(row2["m*k*n/p"], row["m*k*n/p"] / 2)


@settings(max_examples=30, deadline=None)
@given(runtimes=st.lists(st.floats(1e-9, 1e3, allow_nan=False,
                                   allow_infinity=False),
                         min_size=2, max_size=20),
       transform=st.sampled_from(["log", "sqrt", "identity"]))
def test_label_transform_preserves_argmin(runtimes, transform):
    """Monotone label transforms never change the chosen thread count.

    Preservation holds up to *ties*: nearly-equal runtimes may collapse
    to the same float under the transform (log of two adjacent 1e-9
    values, say), legitimately flipping which tied index argmin picks —
    so the assertion is that the chosen entry is a raw minimum within
    float tolerance, not that the index matches exactly.
    """
    cfg = AdsalaConfig(machine="t", label_transform=transform)
    arr = np.asarray(runtimes)
    chosen = arr[np.argmin(cfg.transform_label(arr))]
    assert chosen <= arr.min() * (1 + 1e-12)


@settings(max_examples=25, deadline=None)
@given(n_shapes=st.integers(2, 8), n_threads=st.integers(1, 5),
       seed=st.integers(0, 50))
def test_optimal_threads_consistent_with_rows(n_shapes, n_threads, seed):
    """Per-shape optimum is the row-level argmin, for any dataset."""
    rng = np.random.default_rng(seed)
    shapes = rng.integers(1, 100, size=(n_shapes, 3))
    grid = np.arange(1, n_threads + 1)
    m, k, n, t, rt = [], [], [], [], []
    for (a, b, c) in shapes:
        for p in grid:
            m.append(a), k.append(b), n.append(c), t.append(p)
            rt.append(float(rng.uniform(0.1, 10)))
    data = TimingDataset(m, k, n, t, rt)
    uniq, best_t, best_rt, max_rt = data.optimal_threads()
    for shape, bt, brt in zip(uniq, best_t, best_rt):
        mask = ((data.m == shape[0]) & (data.k == shape[1])
                & (data.n == shape[2]))
        assert brt == data.runtime[mask].min()
        assert brt == data.runtime[mask][data.threads[mask] == bt][0]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), cap_mb=st.integers(1, 64))
def test_domain_sampler_always_respects_cap(seed, cap_mb):
    from repro.sampling.domain import GemmDomainSampler

    sampler = GemmDomainSampler(memory_cap_bytes=cap_mb * 1024 * 1024,
                                seed=seed)
    for spec in sampler.sample(10):
        assert spec.memory_bytes <= cap_mb * 1024 * 1024
        assert spec.min_dim >= 1
