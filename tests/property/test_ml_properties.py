"""Property-based tests on the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.elasticnet import soft_threshold
from repro.ml.metrics import normalised_rmse, r2_score, rmse
from repro.ml.model_selection import KFold, stratify_bins, train_test_split
from repro.preprocessing.yeo_johnson import (yeo_johnson, yeo_johnson_inverse,
                                             yeo_johnson_mle_lambda)

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@given(value=finite_floats, threshold=st.floats(0, 1e6, allow_nan=False))
def test_soft_threshold_shrinks_magnitude(value, threshold):
    out = soft_threshold(value, threshold)
    assert abs(out) <= abs(value) + 1e-12
    assert out * value >= 0  # never flips sign


@given(y=arrays(np.float64, st.integers(2, 50),
                elements=st.floats(-100, 100, allow_nan=False)))
def test_rmse_zero_iff_equal(y):
    assert rmse(y, y) == 0.0
    assert r2_score(y, y) == 1.0


@given(y=arrays(np.float64, st.integers(3, 50),
                elements=st.floats(-100, 100, allow_nan=False,
                                   allow_subnormal=False)),
       shift=st.floats(0.1, 10, allow_nan=False))
def test_nrmse_detects_bias(y, shift):
    if np.std(y) > 1e-6:
        biased = y + shift
        assert normalised_rmse(y, biased) > 0


@settings(max_examples=30, deadline=None)
@given(lam=st.floats(-2, 4, allow_nan=False),
       x=arrays(np.float64, st.integers(1, 40),
                elements=st.floats(-50, 50, allow_nan=False,
                                   allow_subnormal=False)))
def test_yeo_johnson_invertible_and_monotone(lam, x):
    z = yeo_johnson(x, lam)
    assert np.isfinite(z).all()
    back = yeo_johnson_inverse(z, lam)
    np.testing.assert_allclose(back, x, rtol=1e-6, atol=1e-6)
    order = np.argsort(x)
    assert (np.diff(z[order]) >= -1e-9).all()


@settings(max_examples=20, deadline=None)
@given(x=arrays(np.float64, st.integers(5, 60),
                elements=st.floats(-100, 100, allow_nan=False,
                                   allow_subnormal=False)))
def test_mle_lambda_in_bounds(x):
    lam = yeo_johnson_mle_lambda(x)
    assert -3.0 <= lam <= 5.0


@settings(max_examples=20, deadline=None)
@given(n=st.integers(10, 200), test_size=st.floats(0.1, 0.5),
       seed=st.integers(0, 100))
def test_split_partitions_exactly(n, test_size, seed):
    X = np.arange(n).reshape(-1, 1).astype(float)
    y = np.arange(n).astype(float)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=test_size,
                                          random_state=seed)
    ids = np.sort(np.concatenate([Xtr.ravel(), Xte.ravel()]))
    np.testing.assert_array_equal(ids, np.arange(n))
    assert len(Xtr) == len(ytr) and len(Xte) == len(yte)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(10, 100), splits=st.integers(2, 5), seed=st.integers(0, 20))
def test_kfold_covers_all_indices_once(n, splits, seed):
    X = np.zeros((n, 1))
    seen = []
    for train, val in KFold(n_splits=splits, random_state=seed).split(X):
        seen.extend(val.tolist())
        assert len(np.intersect1d(train, val)) == 0
    assert sorted(seen) == list(range(n))


@settings(max_examples=20, deadline=None)
@given(y=arrays(np.float64, st.integers(4, 200),
                elements=st.floats(-1e3, 1e3, allow_nan=False,
                                   allow_subnormal=False)),
       bins=st.integers(2, 10))
def test_stratify_bins_labels_valid(y, bins):
    labels = stratify_bins(y, n_bins=bins)
    assert labels.shape == y.shape
    assert labels.min() >= 0
    assert labels.max() < bins
