"""Optimality-condition property tests for the convex solvers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.elasticnet import ElasticNet
from repro.ml.linear import Ridge


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), alpha=st.floats(0.01, 1.0),
       l1_ratio=st.floats(0.0, 1.0))
def test_elasticnet_satisfies_kkt_conditions(seed, alpha, l1_ratio):
    """At the coordinate-descent optimum the KKT conditions hold:

    for w_j != 0:  (1/n) x_j . r == alpha*l1*sign(w_j) + alpha*l2*w_j
    for w_j == 0:  |(1/n) x_j . r| <= alpha*l1
    """
    rng = np.random.default_rng(seed)
    n, d = 120, 5
    X = rng.standard_normal((n, d))
    y = X @ rng.standard_normal(d) + 0.1 * rng.standard_normal(n)
    model = ElasticNet(alpha=alpha, l1_ratio=l1_ratio, max_iter=5000,
                       tol=1e-12).fit(X, y)

    Xc = X - X.mean(axis=0)
    yc = y - y.mean()
    residual = yc - Xc @ model.coef_
    grad = Xc.T @ residual / n
    l1 = alpha * l1_ratio
    l2 = alpha * (1.0 - l1_ratio)
    for j in range(d):
        w = model.coef_[j]
        if w != 0.0:
            np.testing.assert_allclose(grad[j], l1 * np.sign(w) + l2 * w,
                                       atol=1e-6)
        else:
            assert abs(grad[j]) <= l1 + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), alpha=st.floats(0.0, 100.0))
def test_ridge_normal_equations(seed, alpha):
    """Ridge solves its normal equations exactly (centred form)."""
    rng = np.random.default_rng(seed)
    n, d = 60, 4
    X = rng.standard_normal((n, d))
    y = rng.standard_normal(n)
    model = Ridge(alpha=alpha).fit(X, y)
    Xc = X - X.mean(axis=0)
    yc = y - y.mean()
    lhs = (Xc.T @ Xc + alpha * np.eye(d)) @ model.coef_
    np.testing.assert_allclose(lhs, Xc.T @ yc, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50))
def test_ridge_interpolates_between_ols_and_zero(seed):
    """Coefficient norm decreases monotonically in alpha."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((80, 4))
    y = rng.standard_normal(80)
    norms = [float(np.linalg.norm(Ridge(alpha=a).fit(X, y).coef_))
             for a in (0.0, 1.0, 100.0, 1e6)]
    assert all(a >= b - 1e-12 for a, b in zip(norms, norms[1:]))
