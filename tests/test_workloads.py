"""Workload trace generation and replay."""

import pytest

from repro.bench.workloads import (WorkloadTrace, mixed_hpc, replay,
                                   resnet_inference, scf_iterations)
from repro.core.library import AdsalaGemm


class TestTraceGenerators:
    def test_resnet_structure(self):
        trace = resnet_inference(batches=4)
        assert len(trace) == 6 * 4
        assert trace.unique_shapes == 6
        # Batched layer-major: consecutive calls share shapes.
        assert trace.calls[0].key() == trace.calls[1].key()

    def test_scf_repeatable(self):
        a = scf_iterations(iterations=2, seed=3)
        b = scf_iterations(iterations=2, seed=3)
        assert [s.dims for s in a.calls] == [s.dims for s in b.calls]

    def test_mixed_hpc_within_cap(self):
        trace = mixed_hpc(n_calls=20, memory_cap_mb=50)
        assert len(trace) == 20
        assert all(s.memory_mb <= 50 for s in trace.calls)
        assert trace.unique_shapes == 20  # memoisation-hostile

    def test_total_flops_positive(self):
        assert resnet_inference(1).total_flops > 0


class TestReplay:
    def test_replay_speedup_and_memoisation(self, tiny_bundle):
        bundle, sim = tiny_bundle
        trace = resnet_inference(batches=4)
        with AdsalaGemm(bundle, sim) as gemm:
            result = replay(trace, gemm)
        assert result.speedup > 1.0
        # Layer-major batching: 3 of every 4 calls hit the memo.
        assert result.memo_hit_rate > 0.5
        assert result.trace.unique_shapes == len(result.thread_choices)

    def test_replay_mixed_trace(self, tiny_bundle):
        bundle, sim = tiny_bundle
        trace = mixed_hpc(n_calls=15, memory_cap_mb=6, seed=11)
        with AdsalaGemm(bundle, sim) as gemm:
            result = replay(trace, gemm)
        assert result.adsala_seconds > 0
        assert result.memo_hit_rate == 0.0  # all shapes distinct
        assert result.speedup > 1.0
