"""GEMM domain sampling under memory caps."""

import numpy as np
import pytest

from repro.sampling.domain import GemmDomainSampler

MB = 1024 * 1024


class TestDomainSampler:
    def test_all_samples_fit_cap(self):
        sampler = GemmDomainSampler(memory_cap_bytes=100 * MB, seed=0)
        specs = sampler.sample(200)
        assert len(specs) == 200
        assert all(s.memory_bytes <= 100 * MB for s in specs)

    def test_deterministic_per_seed(self):
        a = GemmDomainSampler(memory_cap_bytes=50 * MB, seed=3).sample(50)
        b = GemmDomainSampler(memory_cap_bytes=50 * MB, seed=3).sample(50)
        assert [s.dims for s in a] == [s.dims for s in b]

    def test_seed_changes_samples(self):
        a = GemmDomainSampler(memory_cap_bytes=50 * MB, seed=1).sample(50)
        b = GemmDomainSampler(memory_cap_bytes=50 * MB, seed=2).sample(50)
        assert [s.dims for s in a] != [s.dims for s in b]

    def test_covers_skinny_and_square(self):
        """Paper IV-B: slim/square and big/small matrices all appear."""
        specs = GemmDomainSampler(memory_cap_bytes=500 * MB, seed=0).sample(400)
        aspect = np.array([s.max_dim / s.min_dim for s in specs])
        assert (aspect > 50).any()      # skinny shapes present
        assert (aspect < 3).sum() > 20  # plenty of squarish shapes

    def test_dim_max_default_matches_paper_scale(self):
        """500 MB cap should allow dims up to the ~74k seen in Fig. 9."""
        sampler = GemmDomainSampler(memory_cap_bytes=500 * MB)
        assert 60000 < sampler.dim_max < 90000

    def test_dims_within_bounds(self):
        sampler = GemmDomainSampler(memory_cap_bytes=100 * MB,
                                    dim_min=16, dim_max=5000, seed=0)
        specs = sampler.sample(100)
        for s in specs:
            assert all(16 <= d <= 5000 for d in s.dims)

    def test_rejection_counted(self):
        sampler = GemmDomainSampler(memory_cap_bytes=500 * MB, seed=0)
        sampler.sample(100)
        assert sampler.rejected_ > 0
        assert 0 < sampler.acceptance_rate() <= 1.0

    def test_acceptance_rate_before_sampling_raises(self):
        sampler = GemmDomainSampler(memory_cap_bytes=10 * MB)
        with pytest.raises(RuntimeError):
            sampler.acceptance_rate()

    def test_dtype_halves_the_domain(self):
        s32 = GemmDomainSampler(memory_cap_bytes=100 * MB, dtype="float32")
        s64 = GemmDomainSampler(memory_cap_bytes=100 * MB, dtype="float64")
        assert s64.dim_max < s32.dim_max

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmDomainSampler(memory_cap_bytes=0)
        with pytest.raises(ValueError):
            GemmDomainSampler(memory_cap_bytes=10 * MB, bases=(2, 3))
        with pytest.raises(ValueError):
            GemmDomainSampler(memory_cap_bytes=10 * MB, dim_min=100, dim_max=10)
        with pytest.raises(ValueError):
            GemmDomainSampler(memory_cap_bytes=10 * MB).sample(0)

    def test_cap_smaller_than_min_shape_rejected(self):
        # Either the derived dim_max collapses below dim_min or the
        # minimal shape does not fit; both must raise.
        with pytest.raises(ValueError):
            GemmDomainSampler(memory_cap_bytes=100, dim_min=64)
        with pytest.raises(ValueError, match="minimal shape"):
            GemmDomainSampler(memory_cap_bytes=100, dim_min=64, dim_max=64)

    def test_sobol_sequence_option(self):
        halton = GemmDomainSampler(memory_cap_bytes=50 * MB, seed=0)
        sobol = GemmDomainSampler(memory_cap_bytes=50 * MB, seed=0,
                                  sequence="sobol")
        a = halton.sample(30)
        b = sobol.sample(30)
        assert all(s.memory_bytes <= 50 * MB for s in b)
        assert [s.dims for s in a] != [s.dims for s in b]

    def test_unknown_sequence_rejected(self):
        with pytest.raises(ValueError, match="sequence"):
            GemmDomainSampler(memory_cap_bytes=MB, sequence="niederreiter")
