"""Pre-designed Fig. 13/14 sweeps."""

import pytest

from repro.sampling.predesigned import (SMALL_VALUES, SWEEP_SIZES,
                                        PredesignedCase, predesigned_cases)


class TestPredesignedCases:
    def test_family_counts(self):
        cases = predesigned_cases()
        square = [c for c in cases if c.family == "square"]
        one_small = [c for c in cases if c.family == "one_small"]
        two_small = [c for c in cases if c.family == "two_small"]
        assert len(square) == len(SWEEP_SIZES)
        # 3 rows x 4 small values x 6 sweep sizes (Fig. 13 rows 1-3).
        assert len(one_small) == 3 * len(SMALL_VALUES) * len(SWEEP_SIZES)
        assert len(two_small) == 3 * len(SMALL_VALUES) * len(SWEEP_SIZES)

    def test_square_cases_are_cubes(self):
        for c in predesigned_cases(families=("square",)):
            assert c.spec.m == c.spec.k == c.spec.n == c.swept_value

    def test_one_small_pins_exactly_one_dim(self):
        for c in predesigned_cases(families=("one_small",)):
            dims = {"m": c.spec.m, "k": c.spec.k, "n": c.spec.n}
            assert dims[c.row] == c.small_value
            others = [v for d, v in dims.items() if d != c.row]
            assert others == [c.swept_value, c.swept_value]

    def test_two_small_pins_exactly_two_dims(self):
        for c in predesigned_cases(families=("two_small",)):
            dims = {"m": c.spec.m, "k": c.spec.k, "n": c.spec.n}
            for d in c.row:
                assert dims[d] == c.small_value
            swept = [v for d, v in dims.items() if d not in c.row]
            assert swept == [c.swept_value]

    def test_panel_labels_match_figures(self):
        labels = {c.panel for c in predesigned_cases(families=("one_small",))}
        assert "n,k (m=64)" in labels
        labels2 = {c.panel for c in predesigned_cases(families=("two_small",))}
        assert "m (k,n=64)" in labels2

    def test_table7_cases_present(self):
        """The profiled shapes 64,2048,64-like cases appear in the grid
        family (64 small, 2048 swept)."""
        dims = {c.spec.dims for c in predesigned_cases(families=("two_small",))}
        assert (2048, 64, 64) in dims or (64, 2048, 64) in dims

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            predesigned_cases(families=("cubes",))

    def test_custom_grids(self):
        cases = predesigned_cases(families=("square",), sweep_sizes=(8, 16))
        assert [c.swept_value for c in cases] == [8, 16]
