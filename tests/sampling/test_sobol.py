"""Sobol sequence construction."""

import numpy as np
import pytest

from repro.sampling.sobol import sobol_sequence


class TestSobol:
    def test_first_dimension_is_van_der_corput(self):
        pts = sobol_sequence(4, 1)
        # Gray-code order of base-2 radical inverse: 0.5, 0.75, 0.25, ...
        assert pts[0, 0] == 0.5
        assert set(np.round(pts[:3, 0], 6)) == {0.5, 0.75, 0.25}

    def test_range_and_shape(self):
        pts = sobol_sequence(256, 3)
        assert pts.shape == (256, 3)
        assert (pts >= 0).all() and (pts < 1).all()

    def test_balanced_in_every_dimension(self):
        pts = sobol_sequence(1024, 4)
        np.testing.assert_allclose(pts.mean(axis=0), 0.5, atol=0.02)

    def test_stratification_power_of_two(self):
        """The first 2^k points (including the skipped origin) hit every
        dyadic interval exactly once per dimension — the net property."""
        pts = sobol_sequence(63, 3)  # indices 1..63; index 0 is the origin
        for j in range(3):
            col = np.concatenate([[0.0], pts[:, j]])
            counts, _ = np.histogram(col, bins=64, range=(0, 1))
            assert (counts == 1).all()

    def test_better_gap_than_random(self):
        n = 256
        s = np.sort(sobol_sequence(n, 1)[:, 0])
        r = np.sort(np.random.default_rng(0).uniform(size=n))
        gap = lambda xs: np.max(np.diff(np.concatenate([[0.0], xs, [1.0]])))
        assert gap(s) < gap(r)

    def test_scramble_preserves_balance(self):
        plain = sobol_sequence(512, 3)
        scram = sobol_sequence(512, 3, scramble=True, seed=7)
        assert not np.allclose(plain, scram)
        np.testing.assert_allclose(scram.mean(axis=0), 0.5, atol=0.05)

    def test_scramble_deterministic_per_seed(self):
        a = sobol_sequence(50, 2, scramble=True, seed=3)
        b = sobol_sequence(50, 2, scramble=True, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_dimension_limit(self):
        with pytest.raises(ValueError):
            sobol_sequence(10, 9)
        with pytest.raises(ValueError):
            sobol_sequence(0, 2)
