"""Halton sequences: radical inverse, discrepancy, scrambling."""

import numpy as np
import pytest

from repro.sampling.halton import (halton_sequence, radical_inverse,
                                   scrambled_halton_sequence)


class TestRadicalInverse:
    def test_base2_known_values(self):
        # Classic van der Corput: 1->0.5, 2->0.25, 3->0.75, 4->0.125
        assert radical_inverse(1, 2) == 0.5
        assert radical_inverse(2, 2) == 0.25
        assert radical_inverse(3, 2) == 0.75
        assert radical_inverse(4, 2) == 0.125

    def test_base3_known_values(self):
        assert radical_inverse(1, 3) == pytest.approx(1 / 3)
        assert radical_inverse(2, 3) == pytest.approx(2 / 3)
        assert radical_inverse(3, 3) == pytest.approx(1 / 9)

    def test_zero_index_maps_to_zero(self):
        assert radical_inverse(0, 2) == 0.0

    def test_values_in_unit_interval(self):
        for i in range(1, 200):
            assert 0.0 <= radical_inverse(i, 5) < 1.0

    def test_identity_permutation_matches_plain(self):
        perm = np.arange(3)
        for i in range(1, 50):
            assert radical_inverse(i, 3, perm) == radical_inverse(i, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            radical_inverse(1, 1)
        with pytest.raises(ValueError):
            radical_inverse(-1, 2)


class TestHaltonSequence:
    def test_shape(self):
        assert halton_sequence(100, (2, 3, 5)).shape == (100, 3)

    def test_low_discrepancy_beats_random_worst_gap(self):
        """1-D Halton fills the interval more evenly than iid uniform."""
        n = 256
        h = np.sort(halton_sequence(n, (2,))[:, 0])
        r = np.sort(np.random.default_rng(0).uniform(size=n))
        gap = lambda xs: np.max(np.diff(np.concatenate([[0.0], xs, [1.0]])))
        assert gap(h) < gap(r)

    def test_dimension_means_near_half(self):
        pts = halton_sequence(1000, (2, 3, 5))
        np.testing.assert_allclose(pts.mean(axis=0), 0.5, atol=0.05)

    def test_start_index_continues_sequence(self):
        full = halton_sequence(20, (2,))
        tail = halton_sequence(10, (2,), start_index=11)
        np.testing.assert_allclose(full[10:], tail)


class TestScrambledHalton:
    def test_shape_and_range(self):
        pts = scrambled_halton_sequence(500, (2, 3, 4), seed=0)
        assert pts.shape == (500, 3)
        assert (pts >= 0).all() and (pts < 1).all()

    def test_deterministic_per_seed(self):
        # Larger bases so the digit permutations have room to differ.
        a = scrambled_halton_sequence(50, (7, 11), seed=1)
        b = scrambled_halton_sequence(50, (7, 11), seed=1)
        np.testing.assert_array_equal(a, b)
        c = scrambled_halton_sequence(50, (7, 11), seed=2)
        assert not np.array_equal(a, c)

    def test_base2_scramble_is_identity(self):
        """Base 2 has only one digit permutation fixing 0."""
        plain = halton_sequence(100, (2,))
        scrambled = scrambled_halton_sequence(100, (2,), seed=9)
        np.testing.assert_allclose(plain, scrambled)

    def test_scrambling_reduces_high_base_correlation(self):
        """The paper's reason for scrambling: plain Halton with close
        bases shows strong stripe correlation; scrambling removes it."""
        n = 60  # the stripes show while n is small relative to the bases
        plain = halton_sequence(n, (29, 31))
        scram = scrambled_halton_sequence(n, (29, 31), seed=0)
        corr_plain = abs(np.corrcoef(plain.T)[0, 1])
        corr_scram = abs(np.corrcoef(scram.T)[0, 1])
        assert corr_scram < corr_plain

    def test_still_low_discrepancy(self):
        pts = scrambled_halton_sequence(1000, (2, 3, 5), seed=0)
        np.testing.assert_allclose(pts.mean(axis=0), 0.5, atol=0.05)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            scrambled_halton_sequence(0, (2,))
