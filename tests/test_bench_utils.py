"""Benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench.gflops import MemoryBucket, bucket_gflops
from repro.bench.report import (ascii_histogram, batch_size_table,
                                cache_effectiveness_table, format_table,
                                heatmap_summary, latency_table)
from repro.bench.stats import latency_summary, speedup_stats


class TestSpeedupStats:
    def test_table5_fields(self):
        stats = speedup_stats([1.0, 1.2, 1.4, 2.0, 0.9])
        d = stats.as_dict()
        assert set(d) == {"Mean Speedup", "Standard Deviation", "Min Speedup",
                          "25th Percentile", "50th Percentile",
                          "75th Percentile", "Max Speedup", "N"}
        assert d["Min Speedup"] == 0.9
        assert d["Max Speedup"] == 2.0
        assert d["N"] == 5

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(0)
        stats = speedup_stats(rng.lognormal(0, 0.5, 500))
        assert stats.minimum <= stats.p25 <= stats.median <= stats.p75 <= stats.maximum

    def test_single_value(self):
        stats = speedup_stats([1.3])
        assert stats.std == 0.0 and stats.mean == 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_stats([])
        with pytest.raises(ValueError):
            speedup_stats([1.0, -0.5])


class TestLatencySummary:
    def test_fields_and_ordering(self):
        rng = np.random.default_rng(0)
        summary = latency_summary(rng.exponential(0.002, 1000))
        assert summary.n == 1000
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        assert summary.mean > 0

    def test_as_row_scales_seconds_to_ms(self):
        summary = latency_summary([0.001, 0.002, 0.003])
        row = summary.as_row(label="serve")
        assert row["series"] == "serve"
        assert row["p50_ms"] == pytest.approx(2.0)
        assert row["max_ms"] == pytest.approx(3.0)
        assert row["n"] == 3

    def test_as_row_without_label(self):
        row = latency_summary([0.5]).as_row()
        assert "series" not in row
        assert row["mean_ms"] == pytest.approx(500.0)

    def test_single_sample(self):
        summary = latency_summary([0.25])
        assert summary.p50 == summary.p99 == summary.maximum == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_summary([])
        with pytest.raises(ValueError):
            latency_summary([0.1, -0.1])

    def test_latency_table_renders(self):
        text = latency_table(
            {"latency": latency_summary([0.001, 0.004]),
             "queue wait": latency_summary([0.0005, 0.001])},
            title="request latency (ms)")
        assert "request latency (ms)" in text
        assert "p99_ms" in text and "queue wait" in text

    def test_latency_table_rejects_empty(self):
        with pytest.raises(ValueError):
            latency_table({})


class TestBatchSizeTable:
    def test_renders_sorted_with_shares(self):
        text = batch_size_table({4: 1, 1: 3})
        lines = text.splitlines()
        assert "batch sizes" in lines[0]
        assert lines[3].startswith("1") and "75.0%" in lines[3]
        assert lines[4].startswith("4") and "25.0%" in lines[4]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            batch_size_table({})


class TestBucketGflops:
    def test_bucketing_and_throughput(self):
        memory = [50, 150, 450]
        flops = [1e9, 2e9, 4e9]
        t_base = [1.0, 1.0, 2.0]
        t_ml = [0.5, 0.5, 2.0]
        buckets = bucket_gflops(memory, flops, t_base, t_ml)
        assert len(buckets) == 5
        b0 = buckets[0]
        assert b0.label == "0-100" and b0.n == 1
        assert b0.baseline_gflops == pytest.approx(1.0)
        assert b0.ml_gflops == pytest.approx(2.0)
        assert b0.speedup == pytest.approx(2.0)
        assert buckets[2].n == 0  # 200-300 empty

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            bucket_gflops([1.0], [1.0, 2.0], [1.0], [1.0])

    def test_custom_edges(self):
        buckets = bucket_gflops([5], [1e9], [1.0], [1.0], edges_mb=[0, 10])
        assert len(buckets) == 1 and buckets[0].n == 1


class TestReportFormatting:
    def test_format_table_aligns(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_key_mismatch(self):
        with pytest.raises(ValueError):
            format_table([{"a": 1}, {"b": 2}])

    def test_ascii_histogram_counts(self):
        text = ascii_histogram([1, 1, 1, 5], bins=2, title="H")
        assert text.startswith("H")
        assert "3" in text  # bin with three entries

    def test_heatmap_summary_runs(self):
        rng = np.random.default_rng(0)
        x, y = rng.uniform(1, 100, 50), rng.uniform(1, 100, 50)
        v = x + y
        text = heatmap_summary(x, y, v, x_label="m", y_label="k",
                               value_label="threads")
        assert "threads" in text
        assert "." in text or any(ch.isdigit() for ch in text)

    def test_heatmap_alignment_guard(self):
        with pytest.raises(ValueError):
            heatmap_summary([1, 2], [1], [1, 2])


class TestSparkline:
    def test_monotone_series_shape(self):
        from repro.bench.report import sparkline

        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert len(line) == 8
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series(self):
        from repro.bench.report import sparkline

        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty_rejected(self):
        from repro.bench.report import sparkline
        import pytest

        with pytest.raises(ValueError):
            sparkline([])


class TestCacheEffectivenessTable:
    def test_renders_engine_stats(self):
        stats = {"requests": 10, "batches": 2, "unique_shapes": 4,
                 "evaluations": 4, "memo_hit_rate": 0.6, "cache_hits": 6,
                 "cache_misses": 4, "cache_evictions": 0, "cache_size": 4,
                 "cache_maxsize": 64, "cache_hit_rate": 0.6}
        text = cache_effectiveness_table(stats, title="engine cache")
        assert "engine cache" in text
        assert "memo_hit_rate" in text and "0.6" in text

    def test_live_service_stats_render(self, tiny_sim):
        from repro import GemmSpec
        from repro.core.features import FeatureBuilder
        from repro.core.predictor import ThreadPredictor
        from repro.engine import GemmService

        class Flat:
            def predict(self, X):
                return X[:, 3]

        service = GemmService(
            ThreadPredictor(FeatureBuilder("both"), None, Flat(),
                            [1, 2, 4], cache_size=8),
            backend=tiny_sim.backend([1, 2, 4]))
        service.run_batch([GemmSpec(16, 16, 16), GemmSpec(16, 16, 16)])
        assert "cache_hits" in cache_effectiveness_table(service.stats())

    def test_rejects_unrelated_dict(self):
        with pytest.raises(ValueError):
            cache_effectiveness_table({"speedup": 1.2})


class TestPredictionThroughput:
    @pytest.fixture
    def predictor(self):
        from repro.core.features import FeatureBuilder
        from repro.core.predictor import ThreadPredictor

        class Linearish:
            def predict(self, X):
                return X[:, 3] + 1e-6 * X[:, 0]

        return ThreadPredictor(FeatureBuilder("both"), None, Linearish(),
                               [1, 2, 4, 8, 16])

    def test_rows_and_amortisation(self, predictor):
        from repro.bench.throughput import prediction_throughput

        rows = prediction_throughput(predictor, n_shapes=96,
                                     batch_sizes=(1, 8, 64), repeats=2)
        assert [r["batch_size"] for r in rows] == [1, 8, 64]
        assert rows[0]["speedup"] == 1.0
        assert rows[-1]["per_shape_us"] < rows[0]["per_shape_us"]
        # Rows feed straight into the report renderer.
        assert "per_shape_us" in format_table(rows)

    def test_validation(self, predictor):
        from repro.bench.throughput import prediction_throughput

        with pytest.raises(ValueError):
            prediction_throughput(predictor, shapes=[], batch_sizes=(1,))
        with pytest.raises(ValueError):
            prediction_throughput(predictor, batch_sizes=(0,))
        with pytest.raises(ValueError):
            prediction_throughput(predictor, repeats=0)
