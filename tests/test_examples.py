"""Examples are importable and structurally sound (cheap smoke checks).

Full example runs take tens of seconds each; they are exercised manually
and in documentation.  Here we check they import cleanly (no syntax
errors, no missing APIs) and expose a ``main`` entry point.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "deep_learning_shapes",
                "batch_quantum_chemistry", "install_and_deploy",
                "other_blas_routines"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), \
            f"{path.stem} must define main()"
        assert module.__doc__, f"{path.stem} must have a module docstring"

    def test_quickstart_uses_public_api_only(self):
        source = (EXAMPLES_DIR / "quickstart.py").read_text()
        # The quickstart should not reach into private modules.
        assert "._" not in source
        assert "from repro import" in source
