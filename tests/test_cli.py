"""CLI commands: install / models / predict / batch / serve / demo."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_install_args(self):
        args = build_parser().parse_args(
            ["install", "--machine", "tiny", "--shapes", "10", "--out", "x"])
        assert args.machine == ["tiny"] and args.shapes == 10
        assert args.jobs == 1 and not args.resume and not args.matrix
        assert args.routine is None

    def test_install_matrix_args(self):
        args = build_parser().parse_args(
            ["install", "--matrix", "--machine", "tiny", "--machine", "gadi",
             "--routine", "gemm", "--routine", "gemv", "--jobs", "4",
             "--resume", "--out", "reg"])
        assert args.matrix and args.resume and args.jobs == 4
        assert args.machine == ["tiny", "gadi"]
        assert args.routine == ["gemm", "gemv"]

    def test_models_args(self):
        args = build_parser().parse_args(
            ["models", "--registry", "reg", "--inspect", "gemv/tiny@2"])
        assert args.registry == "reg" and args.inspect == "gemv/tiny@2"
        assert args.compile is None

    def test_models_compile_args(self):
        args = build_parser().parse_args(
            ["models", "--registry", "reg", "--compile", "gemm/tiny"])
        assert args.compile == "gemm/tiny" and args.inspect is None

    def test_models_compile_and_inspect_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["models", "--registry", "reg", "--compile", "gemm/tiny",
                 "--inspect", "gemv/tiny"])

    def test_unknown_routine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["install", "--routine", "axpy",
                                       "--out", "x"])

    def test_batch_args(self):
        args = build_parser().parse_args(
            ["batch", "--install", "dir", "--baseline", "shapes.txt"])
        assert args.shapes_file == "shapes.txt"
        assert args.baseline and args.machine is None
        assert args.cache_size == 256

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--install", "dir", "--machine", "gadi",
             "--machine", "setonix", "--rate", "250", "--max-batch", "8",
             "trace.txt"])
        assert args.machine == ["gadi", "setonix"]
        assert args.rate == 250.0 and args.max_batch == 8
        assert args.max_wait_ms == 2.0 and args.shapes_file == "trace.txt"

    def test_serve_defaults_to_installed_machine(self):
        args = build_parser().parse_args(["serve", "--install", "dir", "t.txt"])
        assert args.machine is None and args.clients == 4

    def test_serve_trace_and_obs_args(self):
        args = build_parser().parse_args(
            ["serve", "--install", "dir", "--trace",
             "--obs-dir", "obs_out", "t.txt"])
        assert args.trace and args.obs_dir == "obs_out"
        args = build_parser().parse_args(["serve", "--install", "dir",
                                          "t.txt"])
        assert not args.trace and args.obs_dir is None

    def test_obs_args(self):
        args = build_parser().parse_args(["obs", "artefacts"])
        assert args.obs_dir == "artefacts"
        assert args.tail is None and not args.dump
        args = build_parser().parse_args(["obs", "artefacts", "--tail", "5"])
        assert args.tail == 5
        args = build_parser().parse_args(["obs", "artefacts", "--dump"])
        assert args.dump

    def test_obs_tail_and_dump_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "d", "--tail", "3", "--dump"])

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "--install", "dir", "8", "16", "32"])
        assert (args.m, args.k, args.n) == (8, 16, 32)

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["install", "--machine", "frontier",
                                       "--out", "x"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEndToEnd:
    def test_install_then_predict(self, tmp_path, capsys):
        out = tmp_path / "install"
        rc = main(["install", "--machine", "tiny", "--shapes", "25",
                   "--cap-mb", "8", "--tune-iters", "1", "--cv-folds", "2",
                   "--out", str(out)])
        assert rc == 0
        assert (out / "adsala_config.json").exists()
        captured = capsys.readouterr().out
        assert "selected:" in captured

        rc = main(["predict", "--install", str(out), "64", "512", "64"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "predicted optimal threads" in captured

    def test_demo_runs(self, capsys):
        rc = main(["demo", "--machine", "tiny", "--shapes", "25"])
        assert rc == 0
        assert "speedup vs max" in capsys.readouterr().out

    def test_install_then_batch(self, tmp_path, capsys):
        out = tmp_path / "install"
        main(["install", "--machine", "tiny", "--shapes", "25",
              "--cap-mb", "8", "--tune-iters", "1", "--cv-folds", "2",
              "--out", str(out)])
        capsys.readouterr()

        shapes = tmp_path / "shapes.txt"
        shapes.write_text("# quantum-chemistry-ish stream\n"
                          "64 512 64\n32,768,32\n64 512 64\n\n128 128 128\n")
        rc = main(["batch", "--install", str(out), "--baseline",
                   str(shapes)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "batch of 4 calls on tiny" in captured
        assert "prediction cache" in captured
        assert "speedup" in captured

    def test_install_then_serve(self, tmp_path, capsys):
        out = tmp_path / "install"
        main(["install", "--machine", "tiny", "--shapes", "25",
              "--cap-mb", "8", "--tune-iters", "1", "--cv-folds", "2",
              "--out", str(out)])
        capsys.readouterr()

        shapes = tmp_path / "shapes.txt"
        shapes.write_text("64 512 64\n32 768 32\n64 512 64\n128 128 128\n")
        rc = main(["serve", "--install", str(out), "--rate", "4000",
                   "--requests", "24", "--max-wait-ms", "2",
                   str(shapes)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "serve replay" in captured
        assert "request latency (ms)" in captured
        assert "batch sizes" in captured
        assert "model passes" in captured
        assert "shard tiny" in captured

    def test_serve_with_obs_dir_then_obs_views(self, tmp_path, capsys):
        """serve --obs-dir writes the artefact set; obs reads it back."""
        out = tmp_path / "install"
        main(["install", "--machine", "tiny", "--shapes", "25",
              "--cap-mb", "8", "--tune-iters", "1", "--cv-folds", "2",
              "--out", str(out)])
        capsys.readouterr()

        shapes = tmp_path / "shapes.txt"
        shapes.write_text("64 512 64\n32 768 32\n64 512 64\n128 128 128\n")
        obs_dir = tmp_path / "obs"
        rc = main(["serve", "--install", str(out), "--rate", "4000",
                   "--requests", "16", str(shapes),
                   "--obs-dir", str(obs_dir)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "complete span chains" in captured
        for name in ("metrics.prom", "metrics.jsonl", "spans.jsonl",
                     "stats.json"):
            assert (obs_dir / name).exists(), name

        rc = main(["obs", str(obs_dir)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "serving stats" in captured or "served" in captured
        assert "trace" in captured

        rc = main(["obs", str(obs_dir), "--tail", "2"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "admission" in captured and "execute" in captured
        assert "tier=" in captured

        rc = main(["obs", str(obs_dir), "--dump"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "# TYPE" in captured           # Prometheus text
        assert "repro_serve_served" in captured

    def test_obs_rejects_missing_dir(self, tmp_path, capsys):
        rc = main(["obs", str(tmp_path / "nope")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err

    def test_models_list_compile_inspect(self, tiny_bundle, tmp_path,
                                         capsys):
        from repro.train.registry import ModelRegistry

        bundle, _ = tiny_bundle
        registry_dir = tmp_path / "registry"
        ModelRegistry(registry_dir).publish(bundle, routine="gemm")

        rc = main(["models", "--registry", str(registry_dir)])
        assert rc == 0
        listing = capsys.readouterr().out
        assert "plan" in listing  # compiled-artifact presence column

        # Fresh publishes already carry a plan: compile is a no-op...
        rc = main(["models", "--registry", str(registry_dir),
                   "--compile", "gemm/tiny"])
        assert rc == 0
        assert "already up to date" in capsys.readouterr().out

        # ...but after the plan artefact is lost, it republishes.
        import os

        from repro.core.serialize import PLAN_FILENAME
        from repro.train.registry import ModelRegistry as Reg

        record = Reg(registry_dir).resolve("gemm", "tiny")
        os.remove(os.path.join(record.path, PLAN_FILENAME))
        rc = main(["models", "--registry", str(registry_dir),
                   "--compile", "gemm/tiny"])
        assert rc == 0
        compiled = capsys.readouterr().out
        assert "compiled plan for gemm/tiny@1 published as version 2" \
            in compiled

        rc = main(["models", "--registry", str(registry_dir),
                   "--inspect", "gemm/tiny"])
        assert rc == 0
        inspected = capsys.readouterr().out
        assert "plan:" in inspected and "fused" in inspected

    def test_serve_rejects_missing_shape_file(self, tmp_path, capsys):
        out = tmp_path / "install"
        main(["install", "--machine", "tiny", "--shapes", "25",
              "--cap-mb", "8", "--tune-iters", "1", "--cv-folds", "2",
              "--out", str(out)])
        capsys.readouterr()
        rc = main(["serve", "--install", str(out),
                   str(tmp_path / "missing.txt")])
        assert rc == 2

    def test_batch_rejects_malformed_shape_file(self, tmp_path):
        from repro.cli import parse_trace_file

        bad = tmp_path / "bad.txt"
        bad.write_text("64 512\n")
        with pytest.raises(ValueError):
            parse_trace_file(str(bad))
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        with pytest.raises(ValueError):
            parse_trace_file(str(empty))


class TestFleetCli:
    def test_serve_fleet_args(self):
        args = build_parser().parse_args(
            ["serve", "--registry", "reg", "--workers", "4",
             "--router", "hash", "--watch-interval", "0.5", "t.txt"])
        assert args.workers == 4 and args.router == "hash"
        assert args.watch_interval == 0.5

    def test_serve_fleet_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--registry", "reg", "t.txt"])
        assert args.workers == 1 and args.router == "least_loaded"
        assert args.watch_interval is None

    def test_fleet_args(self):
        args = build_parser().parse_args(
            ["fleet", "--registry", "reg", "--workers", "3",
             "--route-file", "t.txt"])
        assert args.workers == 3 and args.route_file == "t.txt"
        assert args.router == "least_loaded"

    def test_models_gc_args(self):
        args = build_parser().parse_args(
            ["models", "--registry", "reg", "--gc", "2"])
        assert args.gc == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["models", "--registry", "reg", "--gc", "2",
                 "--compile", "gemm/tiny"])

    def test_serve_workers_validation(self, tmp_path, capsys):
        trace = tmp_path / "t.txt"
        trace.write_text("64 512 64\n")
        rc = main(["serve", "--install", "dir", "--workers", "2",
                   str(trace)])
        assert rc == 2
        assert "--registry mode" in capsys.readouterr().err
        rc = main(["serve", "--registry", "dir", "--workers", "0",
                   str(trace)])
        assert rc == 2
        assert "--workers" in capsys.readouterr().err
        rc = main(["serve", "--registry", "dir", "--workers", "2",
                   "--trace", str(trace)])
        assert rc == 2
        assert "not available" in capsys.readouterr().err

    @staticmethod
    def _registry_with(tiny_bundle, tmp_path, publishes=1):
        from repro.train.registry import ModelRegistry

        bundle, _ = tiny_bundle
        registry_dir = tmp_path / "registry"
        registry = ModelRegistry(registry_dir)
        for _ in range(publishes):
            registry.publish(bundle, routine="gemm")
        registry.publish(bundle, routine="gemv")
        return registry_dir

    def test_models_gc_end_to_end(self, tiny_bundle, tmp_path, capsys):
        registry_dir = self._registry_with(tiny_bundle, tmp_path,
                                           publishes=3)
        rc = main(["models", "--registry", str(registry_dir), "--gc", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "removed 2 versions" in out
        assert "removed gemm/tiny@1" in out and "gemm/tiny@2" in out

        rc = main(["models", "--registry", str(registry_dir), "--gc", "1"])
        assert rc == 0
        assert "nothing to collect" in capsys.readouterr().out

    def test_serve_fleet_end_to_end(self, tiny_bundle, tmp_path, capsys):
        registry_dir = self._registry_with(tiny_bundle, tmp_path)
        trace = tmp_path / "mixed.txt"
        trace.write_text("64 512 64\n128 128 128\ngemv 512 256\n"
                         "96 64 96\ngemv 256 768\n48 48 48\n")
        rc = main(["serve", "--registry", str(registry_dir),
                   "--workers", "2", "--rate", "4000", "--requests", "24",
                   str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet-2w" in out
        assert "worker-0" in out and "worker-1" in out
        assert "rejected" in out

    def test_fleet_inspect_end_to_end(self, tiny_bundle, tmp_path, capsys):
        registry_dir = self._registry_with(tiny_bundle, tmp_path)
        trace = tmp_path / "mixed.txt"
        trace.write_text("64 512 64\ngemv 512 256\n128 128 128\n"
                         "gemv 256 768\n")
        rc = main(["fleet", "--registry", str(registry_dir),
                   "--route-file", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet: 2 workers" in out
        assert "routing preview: 4 requests" in out
        assert "gemm@1,gemv@1" in out

    def test_fleet_rejects_empty_registry(self, tmp_path, capsys):
        rc = main(["fleet", "--registry", str(tmp_path / "empty")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
