"""Slab-batched bulk submit: one future per micro-batch, full parity.

``submit_many`` must be indistinguishable from a loop of per-request
``submit`` calls in everything observable — record order, thread
choices, telemetry, error propagation — while allocating event-loop
bookkeeping per *micro-batch* instead of per request.
"""

import asyncio

import pytest

from repro.gemm.interface import GemmSpec
from repro.serve import GemmServer, ServerClosed, ServerOverloaded
from repro.serve.request import SlabRequest

from .conftest import ExplodingBackend


def burst(n: int) -> list:
    return [GemmSpec(16 + i, 32, 24) for i in range(n)]


class TestSlabParity:
    def test_matches_per_request_submit(self, make_service, distinct_specs):
        """Same specs through both paths on fresh twin servers."""

        async def bulk():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=5.0) as server:
                return await server.submit_many(distinct_specs)

        async def streaming():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=5.0) as server:
                return await asyncio.gather(
                    *(server.submit(s) for s in distinct_specs))

        slab_records = asyncio.run(bulk())
        single_records = asyncio.run(streaming())
        assert [(r.spec, r.n_threads) for r in slab_records] \
            == [(r.spec, r.n_threads) for r in single_records]

    def test_results_scatter_back_to_input_order(self, make_service):
        specs = burst(23)[::-1]  # descending m: order must be preserved

        async def run():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=1.0) as server:
                return await server.submit_many(specs)

        records = asyncio.run(run())
        assert [r.spec for r in records] == specs

    def test_empty_burst(self, make_service):
        async def run():
            async with GemmServer(make_service()) as server:
                return await server.submit_many([])

        assert asyncio.run(run()) == []

    def test_telemetry_counts_requests_not_slabs(self, make_service):
        specs = burst(10)

        async def run():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=1.0, fair_share=None) as server:
                await server.submit_many(specs, client="bulk")
                return server

        server = asyncio.run(run())
        stats = server.stats()
        assert stats["submitted"] == 10 and stats["served"] == 10
        assert stats["clients"]["bulk"]["submitted"] == 10
        assert sum(k * v for k, v
                   in stats["batch_size_histogram"].items()) == 10


class TestFutureEconomy:
    def test_one_future_per_micro_batch(self, make_service, monkeypatch):
        """A 256-request burst through max_batch=16 must allocate
        exactly 16 slabs — one future each — not 256 futures."""
        created = []

        def counting_slab(*args, **kwargs):
            slab = SlabRequest(*args, **kwargs)
            created.append(slab)
            return slab

        monkeypatch.setattr("repro.serve.server.SlabRequest", counting_slab)
        specs = burst(256)

        async def run():
            async with GemmServer(make_service(), max_batch=16,
                                  max_wait_ms=1.0, max_queue=64,
                                  max_pending=1024,
                                  fair_share=None) as server:
                return await server.submit_many(specs)

        records = asyncio.run(run())
        assert [r.spec for r in records] == specs
        assert len(created) == 16                     # ceil(256 / 16)
        assert all(slab.count == 16 for slab in created)
        assert sum(slab.count for slab in created) == 256
        futures = {id(slab.future) for slab in created}
        assert len(futures) == 16                     # one future per slab

    def test_ragged_tail_gets_its_own_slab(self, make_service, monkeypatch):
        created = []

        def counting_slab(*args, **kwargs):
            slab = SlabRequest(*args, **kwargs)
            created.append(slab)
            return slab

        monkeypatch.setattr("repro.serve.server.SlabRequest", counting_slab)

        async def run():
            async with GemmServer(make_service(), max_batch=8,
                                  max_wait_ms=1.0,
                                  fair_share=None) as server:
                await server.submit_many(burst(21))

        asyncio.run(run())
        assert sorted(slab.count for slab in created) == [5, 8, 8]


class TestSlabFailureModes:
    def test_backend_error_reaches_the_caller(self, make_service,
                                              distinct_specs):
        server = GemmServer(make_service(backend=ExplodingBackend()),
                            max_batch=4, max_wait_ms=1.0)

        async def run():
            async with server:
                with pytest.raises(ArithmeticError, match="boom"):
                    await server.submit_many(distinct_specs[:8])

        asyncio.run(run())
        assert server.telemetry.failed == 8
        assert server.telemetry.served == 0
        assert server._pending == 0  # slots released despite the failure

    def test_burst_admission_is_all_or_nothing(self, make_service,
                                               distinct_specs):
        server = GemmServer(make_service(), max_batch=4, max_wait_ms=1.0,
                            max_queue=4, max_pending=8, fair_share=None)

        async def run():
            async with server:
                with pytest.raises(ServerOverloaded) as err:
                    await server.submit_many(distinct_specs)  # 20 > 8
                assert err.value.reason == "overload"
                # Nothing from the rejected burst may linger: a burst
                # that fits afterwards is served in full.
                return await server.submit_many(distinct_specs[:8])

        records = asyncio.run(run())
        assert len(records) == 8
        assert server.telemetry.rejected["overload"] == len(distinct_specs)
        assert server.telemetry.served == 8

    def test_submit_many_after_close_raises(self, make_service):
        server = GemmServer(make_service())

        async def run():
            async with server:
                pass
            await server.submit_many(burst(3))

        with pytest.raises(ServerClosed):
            asyncio.run(run())

    def test_unknown_shard_rejected_before_admission(self, make_service):
        class LostRouter:
            def route(self, spec, client):
                return "nowhere"

        server = GemmServer({"default": make_service()}, router=LostRouter())

        async def run():
            async with server:
                await server.submit_many(burst(3))

        with pytest.raises(KeyError, match="nowhere"):
            asyncio.run(run())
        assert server._pending == 0


class TestSlabTracing:
    def test_untraced_slabs_allocate_no_traces(self, make_service,
                                               monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("RequestTrace allocated with tracing off")

        monkeypatch.setattr("repro.serve.server.RequestTrace", boom)

        async def run():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=1.0) as server:
                await server.submit_many(burst(8))
                return server

        server = asyncio.run(run())
        assert server.collector is None
        assert server.telemetry.served == 8

    def test_traced_slabs_stamp_every_slot(self, make_service):
        async def run():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=1.0, tracing=True,
                                  fair_share=None) as server:
                await server.submit_many(burst(10), client="traced")
                return server

        server = asyncio.run(run())
        traces = server.collector.traces()
        assert len(traces) == 10
        assert {t.client for t in traces} == {"traced"}
        assert all(t.n_threads == 8 for t in traces)
