"""Serving observability: tracing, tier attribution, drift monitors.

The acceptance properties of the observability layer, end to end:
tracing changes no thread choice and adds no model pass; every served
request yields one complete, well-formed span chain; the predict span
records the tier that actually answered; and the table-fallback drift
monitor fires exactly once when traffic leaves the lattice — never on
in-lattice baseline traffic.
"""

import asyncio

import numpy as np
import pytest

from repro.compile.table import DecisionTable
from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.engine import GemmService, PredictionCache
from repro.gemm.interface import GemmSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import table_fallback_monitor
from repro.obs.tracing import CHAIN
from repro.serve.server import GemmServer

from .conftest import GRID, ExplodingBackend, OracleModel

AXES = ([32, 64, 128], [32, 64, 128], [32, 64, 128])
LATTICE = [GemmSpec(m, k, n) for m in AXES[0] for k in AXES[1]
           for n in AXES[2]]
OFF_LATTICE = [GemmSpec(33 + i, 65, 99) for i in range(12)]


def run(coro):
    return asyncio.run(coro)


def oracle_table() -> DecisionTable:
    """A lattice that always answers 8 — exactly what the oracle picks."""
    shape = tuple(len(a) for a in AXES)
    grid_index = np.full(shape, GRID.index(8), dtype=np.int16)
    return DecisionTable("gemm", GRID, AXES, grid_index)


@pytest.fixture
def make_tabled_service(tiny_sim):
    """Oracle service fronted by a tier-0 table over AXES."""

    def make(cache_size: int = 64):
        predictor = ThreadPredictor(
            FeatureBuilder("both"), None, OracleModel(), GRID,
            cache=PredictionCache(maxsize=cache_size), table=oracle_table())
        return GemmService(predictor, backend=tiny_sim.backend(GRID))

    return make


class TestTracingDisabled:
    def test_no_trace_state_anywhere(self, make_service, distinct_specs,
                                     monkeypatch):
        """An untraced server must never construct a RequestTrace."""

        def boom(*args, **kwargs):
            raise AssertionError("RequestTrace allocated with tracing off")

        monkeypatch.setattr("repro.serve.server.RequestTrace", boom)

        async def scenario():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=0.5) as server:
                await server.submit_many(distinct_specs[:8])
                return server

        server = run(scenario())
        assert server.collector is None
        stats = server.stats()
        assert "trace" not in stats
        assert "monitors" not in stats
        assert stats["served"] == 8

    def test_trace_id_ignored_when_untraced(self, make_service):
        async def scenario():
            async with GemmServer(make_service()) as server:
                record = await server.submit(GemmSpec(64, 64, 64),
                                             trace_id="ext-1")
                return record

        assert run(scenario()).n_threads == 8


class TestTracingEnabled:
    def test_every_served_request_has_a_complete_chain(self, make_service,
                                                       distinct_specs):
        async def scenario():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=0.5, tracing=True) as server:
                await server.submit_many(distinct_specs, client="c0")
                return server

        server = run(scenario())
        stats = server.stats()["trace"]
        assert stats["traces"] == len(distinct_specs)
        assert stats["complete"] == len(distinct_specs)
        assert stats["dropped"] == 0

        for trace in server.collector.traces():
            spans = trace.spans()
            assert [s.name for s in spans] == list(CHAIN)
            root = spans[0]
            assert root.parent_id is None
            assert all(s.parent_id == root.span_id for s in spans[1:])
            assert root.attrs["client"] == "c0"
            assert root.attrs["status"] == "ok"
            by_name = {s.name: s for s in spans}
            assert by_name["predict"].attrs["n_threads"] == 8
            assert by_name["batch"].attrs["batch_size"] >= 1
            assert by_name["execute"].attrs["runtime_s"] > 0
            assert root.t_end >= root.t_start

    def test_bitwise_parity_and_zero_extra_model_passes(self, make_service,
                                                        distinct_specs):
        """Tracing on vs off: identical choices, identical model passes."""

        async def replay(tracing):
            service = make_service(cache_size=64)
            async with GemmServer(service, max_batch=4, max_wait_ms=0.5,
                                  tracing=tracing) as server:
                records = await server.submit_many(distinct_specs * 2)
            return [r.n_threads for r in records], \
                service.stats()["model_passes"]

        traced_choices, traced_passes = run(replay(True))
        plain_choices, plain_passes = run(replay(False))
        assert traced_choices == plain_choices
        assert traced_passes == plain_passes

    def test_caller_supplied_trace_ids(self, make_service):
        async def scenario():
            async with GemmServer(make_service(), tracing=True) as server:
                await server.submit(GemmSpec(64, 64, 64), trace_id="ext-7")
                return server

        server = run(scenario())
        assert server.collector.trace_ids() == ["ext-7"]
        assert [s.trace_id for s in server.collector.chain("ext-7")] \
            == ["ext-7"] * len(CHAIN)

    def test_failed_request_traced_as_error(self, make_service):
        async def scenario():
            service = make_service(backend=ExplodingBackend())
            async with GemmServer(service, max_batch=2, max_wait_ms=0.2,
                                  tracing=True) as server:
                with pytest.raises(ArithmeticError):
                    await server.submit(GemmSpec(64, 64, 64))
                return server

        server = run(scenario())
        stats = server.stats()["trace"]
        assert stats["traces"] == 1
        assert stats["complete"] == 0
        trace = server.collector.traces()[0]
        assert trace.status == "error"
        assert trace.spans()[0].attrs["status"] == "error"


class TestTierAttribution:
    def test_cache_table_and_object_tiers(self, make_tabled_service):
        """The predict span names the tier that actually answered."""
        lattice, off = LATTICE[0], OFF_LATTICE[0]

        async def scenario():
            async with GemmServer(make_tabled_service(), max_batch=1,
                                  max_wait_ms=0.0, tracing=True) as server:
                await server.submit(lattice)    # miss -> table answers
                await server.submit(lattice)    # memoised -> cache
                await server.submit(off)        # off-lattice, no plan
                return server

        server = run(scenario())
        tiers = [t.tier for t in server.collector.traces()]
        assert tiers == ["table", "cache", "object"]
        choices = [t.n_threads for t in server.collector.traces()]
        assert choices[:2] == [8, 8]            # table == oracle

    def test_untabled_service_attributes_object(self, make_service):
        async def scenario():
            async with GemmServer(make_service(), max_batch=4,
                                  max_wait_ms=0.5, tracing=True) as server:
                await server.submit(GemmSpec(48, 48, 48))
                return server

        server = run(scenario())
        assert [t.tier for t in server.collector.traces()] == ["object"]


class TestDriftMonitors:
    def test_fallback_monitor_fires_once_on_off_lattice_shift(
            self, make_tabled_service):
        """The acceptance scenario: in-lattice baseline never fires;
        an off-lattice traffic shift fires exactly once, not per batch."""
        registry = MetricsRegistry()
        fired = []
        monitor = table_fallback_monitor(max_rate=0.2, min_lookups=4,
                                         callback=fired.append)

        async def scenario():
            async with GemmServer(make_tabled_service(cache_size=1),
                                  max_batch=4, max_wait_ms=0.5,
                                  monitors=[monitor],
                                  registry=registry) as server:
                # Phase 1: in-lattice baseline — table answers everything.
                await server.submit_many(LATTICE[:12])
                baseline_fired = monitor.fired
                # Phase 2: traffic shifts off the lattice.
                await server.submit_many(OFF_LATTICE)
                # Phase 3: stays off-lattice — must not re-fire.
                await server.submit_many(OFF_LATTICE)
                return server, baseline_fired

        server, baseline_fired = run(scenario())
        assert baseline_fired is None           # never on baseline
        assert len(fired) == 1                  # exactly once on the shift
        event = fired[0]
        assert event.monitor == "table_fallback_rate"
        assert event.value > 0.2
        assert server.telemetry.table_fallbacks == 2 * len(OFF_LATTICE)

        # The firing is recorded everywhere an operator looks.
        drift_events = registry.events("drift")
        assert len(drift_events) == 1
        assert drift_events[0]["monitor"] == "table_fallback_rate"
        stats = server.stats()["monitors"]
        assert stats["monitors"]["table_fallback_rate"]["fired"] is not None
        assert len(stats["events"]) == 1

    def test_in_lattice_baseline_alone_never_fires(self, make_tabled_service):
        monitor = table_fallback_monitor(max_rate=0.2, min_lookups=4)

        async def scenario():
            async with GemmServer(make_tabled_service(cache_size=1),
                                  max_batch=4, max_wait_ms=0.5,
                                  monitors=[monitor],
                                  registry=MetricsRegistry()) as server:
                await server.submit_many(LATTICE)
                return server

        server = run(scenario())
        assert monitor.fired is None
        assert monitor.last_value == 0.0
        assert server.telemetry.table_hits == len(LATTICE)
