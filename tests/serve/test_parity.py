"""Acceptance: server thread choices == synchronous GemmService.run.

Whatever micro-batches the scheduler happens to form, the engine's
batch prediction is exact, so replaying a trace through the async
server must yield bitwise-identical thread choices to running the same
specs one by one through a fresh synchronous service.
"""

import asyncio

from repro.gemm.interface import GemmSpec
from repro.serve import GemmServer, poisson_trace, replay_trace


def _trace_specs(distinct_specs):
    # Repeats interleaved with fresh shapes: exercises cache hits,
    # intra-batch dedup and straggler windows at once.
    return distinct_specs + distinct_specs[:7] + distinct_specs[::2]


class TestSyncParity:
    def test_thread_choices_identical_to_sync_run(self, make_service,
                                                  distinct_specs):
        specs = _trace_specs(distinct_specs)
        trace = poisson_trace(specs, rate_hz=4000, seed=3, n_clients=3)

        server = GemmServer(make_service(), max_batch=8, max_wait_ms=2.0)
        outcome = replay_trace(server, trace)
        assert outcome.rejected == 0

        sync = make_service()
        expected = [sync.run(item.spec).n_threads for item in trace]
        assert outcome.thread_choices() == expected

    def test_parity_across_batch_policies(self, make_service, distinct_specs):
        """Batch formation must never leak into the choices."""
        specs = _trace_specs(distinct_specs)
        trace = poisson_trace(specs, rate_hz=4000, seed=9)
        choices = []
        for max_batch, max_wait_ms in [(1, 0.0), (4, 1.0), (32, 8.0)]:
            server = GemmServer(make_service(), max_batch=max_batch,
                                max_wait_ms=max_wait_ms)
            outcome = replay_trace(server, trace)
            assert outcome.rejected == 0
            choices.append(outcome.thread_choices())
        assert choices[0] == choices[1] == choices[2]

    def test_fewer_model_passes_than_per_request(self, make_service,
                                                 distinct_specs):
        """Micro-batching's whole point: shared model passes."""
        specs = _trace_specs(distinct_specs)
        trace = poisson_trace(specs, rate_hz=10000, seed=5)

        batched = GemmServer(make_service(), max_batch=32, max_wait_ms=10.0)
        outcome_batched = replay_trace(batched, trace)
        per_request = GemmServer(make_service(), max_batch=1, max_wait_ms=0.0)
        outcome_single = replay_trace(per_request, trace)

        assert outcome_batched.stats["model_passes"] < \
            outcome_single.stats["model_passes"]
        # Both evaluated each unique shape exactly once (cache dedup).
        assert outcome_batched.stats["evaluations"] == \
            outcome_single.stats["evaluations"] == len(distinct_specs)

    def test_multi_shard_parity(self, make_service, distinct_specs):
        """Identical replicas: sharding cannot change any choice."""
        specs = _trace_specs(distinct_specs)
        trace = poisson_trace(specs, rate_hz=4000, seed=7)
        server = GemmServer({"east": make_service(), "west": make_service()},
                            max_batch=8, max_wait_ms=2.0)
        outcome = replay_trace(server, trace)
        assert outcome.rejected == 0

        sync = make_service()
        expected = [sync.run(item.spec).n_threads for item in trace]
        assert outcome.thread_choices() == expected


class TestReplayOutcome:
    def test_report_row_shape(self, make_service, distinct_specs):
        trace = poisson_trace(distinct_specs, rate_hz=4000, seed=1)
        server = GemmServer(make_service(), max_batch=8, max_wait_ms=2.0)
        outcome = replay_trace(server, trace)
        row = outcome.report_row("smoke")
        assert row["mode"] == "smoke"
        assert row["requests"] == len(trace)
        assert row["served"] == outcome.served
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(row)
        assert outcome.requests_per_sec > 0

    def test_records_align_with_trace(self, make_service, distinct_specs):
        trace = poisson_trace(distinct_specs, rate_hz=4000, seed=2)
        server = GemmServer(make_service(), max_batch=8, max_wait_ms=2.0)
        outcome = replay_trace(server, trace)
        assert [r.spec for r in outcome.records] == \
            [item.spec for item in trace]


class TestPoissonTrace:
    def test_deterministic_and_ordered(self, distinct_specs):
        a = poisson_trace(distinct_specs, rate_hz=100, seed=4)
        b = poisson_trace(distinct_specs, rate_hz=100, seed=4)
        assert a == b
        assert all(x.at <= y.at for x, y in zip(a, a[1:]))
        # Spec sequence is seed-independent (parity replays rely on it).
        c = poisson_trace(distinct_specs, rate_hz=100, seed=99)
        assert [i.spec for i in a] == [i.spec for i in c]

    def test_validation(self, distinct_specs):
        import pytest

        with pytest.raises(ValueError):
            poisson_trace([], rate_hz=10)
        with pytest.raises(ValueError):
            poisson_trace(distinct_specs, rate_hz=0)
        with pytest.raises(ValueError):
            poisson_trace(distinct_specs, rate_hz=10, n_clients=0)

    def test_round_robin_clients(self, distinct_specs):
        trace = poisson_trace(distinct_specs, rate_hz=100, n_requests=6,
                              n_clients=3)
        assert [i.client for i in trace] == \
            ["client-0", "client-1", "client-2"] * 2
