"""Micro-batching scheduler and admission-control edge cases."""

import asyncio

import pytest

from repro.gemm.interface import GemmSpec
from repro.serve import (BatchPolicy, GemmServer, ServerClosed,
                         ServerOverloaded)

from .conftest import ExplodingBackend


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_ms=-1.0)

    def test_server_rejects_bad_limits(self, make_service):
        with pytest.raises(ValueError):
            GemmServer(make_service(), max_queue=0)
        with pytest.raises(ValueError):
            GemmServer(make_service(), max_pending=0)
        with pytest.raises(ValueError):
            GemmServer(make_service(), fair_share=1.5)


class TestWindowFlush:
    def test_single_straggler_flushes_on_window(self, make_service):
        """One lonely request must not wait for max_batch companions."""
        server = GemmServer(make_service(), max_batch=64, max_wait_ms=10.0)

        async def run():
            async with server:
                return await server.submit(GemmSpec(64, 64, 64))

        record = asyncio.run(run())
        assert record.n_threads == 8
        assert server.telemetry.batch_size_histogram() == {1: 1}

    def test_zero_wait_serves_singletons(self, make_service, distinct_specs):
        """max_wait_ms=0 degenerates to per-request serving."""
        server = GemmServer(make_service(), max_batch=64, max_wait_ms=0.0)

        async def run():
            async with server:
                for spec in distinct_specs[:5]:
                    await server.submit(spec)

        asyncio.run(run())
        assert server.telemetry.batch_size_histogram() == {1: 5}


class TestBatchFormation:
    def test_max_batch_caps_batch_size(self, make_service, distinct_specs):
        server = GemmServer(make_service(), max_batch=4, max_wait_ms=50.0)

        async def run():
            async with server:
                await server.submit_many(distinct_specs[:10])

        asyncio.run(run())
        sizes = server.telemetry.batch_sizes
        assert sum(sizes) == 10
        assert max(sizes) <= 4
        assert 4 in sizes  # a concurrent burst actually filled a batch

    def test_batch_resolves_every_future_in_order(self, make_service,
                                                  distinct_specs):
        server = GemmServer(make_service(), max_batch=8, max_wait_ms=20.0)

        async def run():
            async with server:
                return await server.submit_many(distinct_specs)

        records = asyncio.run(run())
        assert [r.spec for r in records] == distinct_specs
        assert all(r.n_threads == 8 for r in records)


class TestAdmissionControl:
    def test_hard_limit_rejects_with_overloaded(self, make_service,
                                                distinct_specs):
        server = GemmServer(make_service(), max_batch=4, max_wait_ms=5.0,
                            max_queue=2, max_pending=4, fair_share=None)

        async def run():
            async with server:
                results = await asyncio.gather(
                    *(server.submit(s) for s in distinct_specs),
                    return_exceptions=True)
            return results

        results = asyncio.run(run())
        rejected = [r for r in results if isinstance(r, ServerOverloaded)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert rejected, "the burst must overflow the hard limit"
        assert served, "backpressure must still serve admitted requests"
        assert all(r.reason == "overload" for r in rejected)
        assert server.telemetry.rejected["overload"] == len(rejected)

    def test_backpressure_without_loss(self, make_service, distinct_specs):
        """A tiny queue throttles but never drops below the hard limit."""
        server = GemmServer(make_service(), max_batch=2, max_wait_ms=1.0,
                            max_queue=1, max_pending=1000)

        async def run():
            async with server:
                return await asyncio.gather(
                    *(server.submit(s) for s in distinct_specs))

        records = asyncio.run(run())
        assert len(records) == len(distinct_specs)
        assert server.telemetry.rejected == {}

    def test_fair_share_protects_other_tenants(self, make_service,
                                               distinct_specs):
        # Cap: each client may hold 2 of the 8 admission slots.
        server = GemmServer(make_service(), max_batch=4, max_wait_ms=5.0,
                            max_queue=8, max_pending=8, fair_share=0.25)

        async def run():
            async with server:
                greedy = asyncio.gather(
                    *(server.submit(s, client="greedy")
                      for s in distinct_specs), return_exceptions=True)
                polite = asyncio.gather(
                    *(server.submit(s, client="polite")
                      for s in distinct_specs[:2]), return_exceptions=True)
                return await greedy, await polite

        greedy, polite = asyncio.run(run())
        greedy_rejected = [r for r in greedy
                           if isinstance(r, ServerOverloaded)]
        assert greedy_rejected
        assert all(r.reason == "fair_share" for r in greedy_rejected)
        # The polite tenant was never crowded out.
        assert all(not isinstance(r, Exception) for r in polite)
        clients = server.telemetry.stats()["clients"]
        assert clients["polite"]["rejected"] == 0
        assert clients["greedy"]["rejected"] == len(greedy_rejected)

    def test_pending_accounting_returns_to_zero(self, make_service,
                                                distinct_specs):
        server = GemmServer(make_service(), max_batch=4, max_wait_ms=2.0)

        async def run():
            async with server:
                await server.submit_many(distinct_specs)

        asyncio.run(run())
        assert server.pending == 0


class TestShutdown:
    def test_close_drains_in_flight_requests(self, make_service,
                                             distinct_specs):
        """Requests admitted before close() must resolve, not drop."""
        server = GemmServer(make_service(), max_batch=4, max_wait_ms=200.0)

        async def run():
            await server.start()
            tasks = [asyncio.ensure_future(server.submit(s))
                     for s in distinct_specs[:6]]
            await asyncio.sleep(0)   # let every submit reach its queue
            await server.close()     # well before the 200 ms window
            return await asyncio.gather(*tasks)

        records = asyncio.run(run())
        assert len(records) == 6
        assert all(r.n_threads == 8 for r in records)
        assert server.pending == 0

    def test_submit_after_close_raises(self, make_service):
        server = GemmServer(make_service())

        async def run():
            async with server:
                pass
            await server.submit(GemmSpec(8, 8, 8))

        with pytest.raises(ServerClosed):
            asyncio.run(run())

    def test_submit_before_start_raises(self, make_service):
        server = GemmServer(make_service())
        with pytest.raises(ServerClosed):
            asyncio.run(server.submit(GemmSpec(8, 8, 8)))

    def test_close_is_idempotent(self, make_service):
        server = GemmServer(make_service())

        async def run():
            async with server:
                pass
            await server.close()

        asyncio.run(run())  # no error


class TestFailurePropagation:
    def test_backend_error_reaches_every_caller(self, make_service,
                                                distinct_specs):
        service = make_service(backend=ExplodingBackend())
        server = GemmServer(service, max_batch=4, max_wait_ms=10.0)

        async def run():
            async with server:
                return await asyncio.gather(
                    *(server.submit(s) for s in distinct_specs[:4]),
                    return_exceptions=True)

        results = asyncio.run(run())
        assert all(isinstance(r, ArithmeticError) for r in results)
        assert server.telemetry.failed == 4
        assert server.pending == 0

    def test_unknown_shard_rejected(self, make_service):
        server = GemmServer(make_service())

        async def run():
            async with server:
                await server.submit(GemmSpec(8, 8, 8), shard="nope")

        with pytest.raises(KeyError):
            asyncio.run(run())


class TestCarryPaths:
    """An over-budget entry comes back as a carry and seeds the next
    batch; control items (SHUTDOWN, reload) arriving while a carried
    entry is collecting must not strand it."""

    LIGHT = GemmSpec(8, 8, 8)
    # Fits one light GEMM, not two: every second request is carried.
    BUDGET = 1.5 * float(GemmSpec(8, 8, 8).flops)

    def test_cost_carry_resolves_after_shutdown(self, make_service):
        server = GemmServer(make_service(), max_batch=16, max_wait_ms=500.0,
                            max_batch_cost=self.BUDGET)

        async def scenario():
            async with server:
                tasks = [asyncio.create_task(server.submit(self.LIGHT))
                         for _ in range(2)]
                await asyncio.sleep(0.05)
                # Exiting drains: SHUTDOWN lands while the carried
                # request's 500 ms window is still open.
            return await asyncio.gather(*tasks)

        records = asyncio.run(scenario())
        assert [r.n_threads for r in records] == [8, 8]
        assert server.telemetry.batch_size_histogram() == {1: 2}
        reasons = server.stats()["batch_close_reasons"]
        assert reasons.get("cost", 0) == 1      # the carry that split them
        assert reasons.get("control", 0) == 1   # shutdown closed the carry

    def test_cost_carry_executes_before_reload(self, make_service):
        """The carried request still resolves on the bundle it was
        admitted under; the swap applies to the *next* batch."""
        from repro.core.config import AdsalaConfig
        from repro.core.training import TrainedBundle

        from .conftest import GRID, OracleModel

        spec_a = GemmSpec(24, 64, 48)
        spec_b = GemmSpec(32, 64, 48)
        budget = 1.2 * float(spec_a.flops)  # b never joins a's batch
        bundle = TrainedBundle(
            config=AdsalaConfig(machine="tiny", thread_grid=list(GRID),
                                model_name="oracle-1"),
            pipeline=None, model=OracleModel(target=1))
        server = GemmServer(make_service(), max_batch=16, max_wait_ms=500.0,
                            max_batch_cost=budget)

        async def scenario():
            async with server:
                first = asyncio.create_task(server.submit(spec_a))
                second = asyncio.create_task(server.submit(spec_b))
                await asyncio.sleep(0)  # admit both ahead of the reload
                await server.reload(bundle)
                after = await server.submit(spec_a)
                return await first, await second, after

        r_a, r_b, r_after = asyncio.run(scenario())
        assert (r_a.n_threads, r_b.n_threads) == (8, 8)  # old oracle
        assert r_after.n_threads == 1                    # new oracle
        stats = server.stats()
        assert stats["reloads"] == 1
        assert stats["batch_close_reasons"].get("cost", 0) == 1
        assert stats["batch_close_reasons"].get("control", 0) == 1

    def test_slab_carry_seeds_next_batch(self, make_service):
        """A slab that would overflow max_batch is carried whole and
        forms the next batch by itself."""
        server = GemmServer(make_service(), max_batch=4, max_wait_ms=200.0)
        scalar_spec = GemmSpec(16, 32, 24)
        slab_specs = [GemmSpec(24 + 8 * i, 64, 48) for i in range(4)]

        async def scenario():
            async with server:
                single = asyncio.create_task(server.submit(scalar_spec))
                await asyncio.sleep(0)  # scalar heads the queue
                slab = await server.submit_many(slab_specs)
                return await single, slab

        single, slab = asyncio.run(scenario())
        assert single.spec == scalar_spec
        assert [r.spec for r in slab] == slab_specs
        # The slab (4 slots) could not join the scalar's batch (1 + 4 > 4).
        assert server.telemetry.batch_size_histogram() == {1: 1, 4: 1}
        assert server.stats()["batch_close_reasons"].get("size", 0) == 2
