"""Serving-layer fixtures: fresh oracle-model services on the tiny node.

The oracle model scores thread count 8 best for every shape, so thread
choices are trivially predictable and every assertion about scheduling,
admission and routing is deterministic.  ``make_service`` is a factory
(not a shared instance) because parity and determinism tests need
*fresh* services with empty caches and zeroed counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.engine import GemmService, PredictionCache
from repro.gemm.interface import GemmSpec

GRID = [1, 2, 4, 8, 12, 16]


class OracleModel:
    """Scores ``|n_threads - target|``: argmin is always ``target``."""

    def __init__(self, target: int = 8):
        self.target = target

    def predict(self, X):
        return np.abs(X[:, 3] - self.target)


class ExplodingBackend:
    """A backend whose execution always fails (error-path tests)."""

    name = "exploding"
    thread_grid = np.asarray(GRID)

    def timed_run(self, spec, n_threads, repeats=1):
        raise ArithmeticError("boom")


@pytest.fixture
def make_service(tiny_sim):
    """Factory for fresh oracle services over the tiny simulator."""

    def make(backend=None, cache_size: int = 64, **service_kwargs):
        predictor = ThreadPredictor(
            FeatureBuilder("both"), None, OracleModel(), GRID,
            cache=PredictionCache(maxsize=cache_size))
        return GemmService(predictor,
                           backend=backend or tiny_sim.backend(GRID),
                           **service_kwargs)

    return make


@pytest.fixture
def distinct_specs():
    """Twenty distinct small shapes (cache-hostile stream)."""
    return [GemmSpec(24 + 8 * i, 64, 48) for i in range(20)]
