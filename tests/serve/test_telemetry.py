"""Serving telemetry: latency percentiles, batch histogram, accounting."""

import asyncio

import pytest

from repro.bench.stats import LatencySummary
from repro.serve import GemmServer, ServeTelemetry, poisson_trace, replay_trace


class TestServeTelemetryUnit:
    def test_counters_and_histogram(self):
        t = ServeTelemetry()
        t.record_admission("a", queue_depth=0)
        t.record_admission("a", queue_depth=1)
        t.record_admission("b", queue_depth=2)
        t.record_batch("default", 2)
        t.record_batch("default", 1)
        t.record_done("a", latency=0.004, wait=0.001)
        t.record_done("a", latency=0.002, wait=0.001)
        t.record_done("b", latency=0.010, wait=0.005)
        t.record_rejection("b", "overload")
        stats = t.stats()
        assert stats["submitted"] == 3 and stats["served"] == 3
        assert stats["rejected"] == 1
        assert stats["rejected_by_reason"] == {"overload": 1}
        assert stats["batch_size_histogram"] == {1: 1, 2: 1}
        assert stats["max_queue_depth"] == 2
        assert stats["clients"]["a"]["served"] == 2
        assert stats["clients"]["b"]["rejected"] == 1

    def test_latency_summaries_are_shared_helper_output(self):
        t = ServeTelemetry()
        for ms in (1, 2, 3, 4, 100):
            t.record_done("a", latency=ms / 1e3, wait=ms / 2e3)
        assert isinstance(t.latency(), LatencySummary)
        row = t.stats()["latency_ms"]
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"] <= row["max_ms"]
        assert row["n"] == 5

    def test_empty_stats_have_no_latency(self):
        stats = ServeTelemetry().stats()
        assert "latency_ms" not in stats
        assert stats["mean_batch_size"] == 0.0


class TestServerTelemetryEndToEnd:
    @pytest.fixture
    def outcome_and_server(self, make_service, distinct_specs):
        specs = distinct_specs * 3
        trace = poisson_trace(specs, rate_hz=5000, seed=0, n_clients=2)
        server = GemmServer(make_service(), max_batch=8, max_wait_ms=3.0)
        return replay_trace(server, trace), server

    def test_batch_histogram_accounts_every_request(self, outcome_and_server):
        outcome, server = outcome_and_server
        histogram = outcome.stats["batch_size_histogram"]
        assert sum(size * count for size, count in histogram.items()) == \
            outcome.served

    def test_wait_is_within_latency(self, outcome_and_server):
        _, server = outcome_and_server
        assert all(w <= l + 1e-9 for w, l in
                   zip(server.telemetry.waits, server.telemetry.latencies))
        # Queue wait is bounded by the window plus execution time of the
        # batch in front; with a 3 ms window it stays far below a second.
        assert server.telemetry.wait().maximum < 1.0

    def test_stats_merge_shard_and_config_fields(self, outcome_and_server):
        outcome, server = outcome_and_server
        stats = outcome.stats
        assert stats["max_batch"] == 8
        assert stats["max_wait_ms"] == 3.0
        assert set(stats["shards"]) == {"default"}
        shard = stats["shards"]["default"]
        assert shard["requests"] == outcome.served
        assert stats["evaluations"] == shard["evaluations"]
        assert stats["model_passes"] >= 1

    def test_per_client_accounting_sums_to_totals(self, outcome_and_server):
        outcome, server = outcome_and_server
        clients = outcome.stats["clients"]
        assert set(clients) == {"client-0", "client-1"}
        assert sum(c["served"] for c in clients.values()) == outcome.served
        assert sum(c["submitted"] for c in clients.values()) == \
            outcome.stats["submitted"]
