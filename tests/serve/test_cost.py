"""Cost-aware scheduling: pricing, budgeted batch formation, routing.

The acceptance invariant throughout: a predicted-FLOPs budget moves
*batch boundaries*, never thread selections — per-spec prediction is
independent of which batch a spec lands in.
"""

import asyncio

import pytest

from repro.blas.gemv import GemvSpec
from repro.gemm.counts import gemm_flops
from repro.gemm.interface import GemmSpec
from repro.serve import (BatchPolicy, CostAwareLeastLoadedRouter, CostModel,
                         GemmServer, LeastLoadedRouter, chunk_by_cost)

HEAVY = GemmSpec(256, 256, 256)   # ~33.6 MFLOP
LIGHT = GemmSpec(8, 8, 8)         # ~1.2 kFLOP


class TestCostModel:
    def test_gemm_priced_at_its_flops(self):
        assert CostModel().cost_of_one(HEAVY) == float(HEAVY.flops)
        assert HEAVY.flops == gemm_flops(256, 256, 256)

    def test_gemv_priced_at_its_flops(self):
        spec = GemvSpec(64, 64)
        assert CostModel().cost_of_one(spec) == float(spec.flops)

    def test_bare_triple_is_a_gemm(self):
        assert CostModel().cost_of_one((32, 64, 48)) == \
            float(gemm_flops(32, 64, 48))

    def test_unpriceable_object_costs_default(self):
        assert CostModel().cost_of_one(object()) == 1.0
        assert CostModel(default_cost=7.0).cost_of_one(object()) == 7.0

    def test_per_routine_scale_calibration(self):
        model = CostModel(scales={"gemv": 4.0})
        spec = GemvSpec(64, 64)
        assert model.cost_of_one(spec) == 4.0 * spec.flops
        assert model.cost_of_one(HEAVY) == float(HEAVY.flops)  # unscaled

    def test_calibrate_chains_and_validates(self):
        model = CostModel().calibrate("gemm", 2.0)
        assert model.cost_of_one(LIGHT) == 2.0 * LIGHT.flops
        with pytest.raises(ValueError):
            model.calibrate("gemm", 0.0)
        with pytest.raises(ValueError):
            CostModel(default_cost=0.0)

    def test_cost_of_matches_scalar_pricing(self):
        model = CostModel()
        specs = [HEAVY, LIGHT, HEAVY, GemvSpec(32, 32), LIGHT]
        assert model.cost_of(specs) == \
            [model.cost_of_one(s) for s in specs]
        assert model.total_cost(specs) == sum(model.cost_of(specs))


class TestChunkByCost:
    def test_empty_slots_yield_nothing(self):
        assert list(chunk_by_cost([], [], 4, 100.0)) == []

    def test_max_batch_one_yields_singletons(self):
        chunks = list(chunk_by_cost([0, 1, 2], [1.0, 1.0, 1.0], 1, None))
        assert chunks == [[0], [1], [2]]

    def test_count_only_boundaries_match_slicing(self):
        slots = list(range(10))
        chunks = list(chunk_by_cost(slots, [1.0] * 10, 4, None))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]  # ragged tail

    def test_budget_splits_before_overflow(self):
        chunks = list(chunk_by_cost([0, 1, 2], [5.0, 5.0, 5.0], 16, 10.0))
        assert chunks == [[0, 1], [2]]

    def test_oversized_slot_frames_alone(self):
        chunks = list(chunk_by_cost([0, 1], [100.0, 1.0], 16, 10.0))
        assert chunks == [[0], [1]]

    def test_every_slot_appears_once_in_order(self):
        slots = list(range(13))
        costs = [3.0, 9.0, 1.0, 1.0, 1.0, 20.0, 2.0, 2.0, 2.0, 2.0, 2.0,
                 1.0, 1.0]
        chunks = list(chunk_by_cost(slots, costs, 4, 10.0))
        assert [s for chunk in chunks for s in chunk] == slots
        assert all(len(chunk) <= 4 for chunk in chunks)
        assert all(sum(costs[s] for s in chunk) <= 10.0
                   for chunk in chunks if len(chunk) > 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(chunk_by_cost([0], [1.0], 0, None))
        with pytest.raises(ValueError):
            list(chunk_by_cost([0], [1.0], 4, 0.0))


class TestBatchPolicyCost:
    def test_default_is_count_only(self):
        assert BatchPolicy().max_batch_cost is None

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_cost=0.0)
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_cost=-1.0)
        assert BatchPolicy(max_batch_cost=1e6).max_batch_cost == 1e6


class TestCostAwareRouter:
    def test_burst_spreads_by_cost_not_count(self):
        """One heavy request weighs as much as thousands of light ones."""
        count_router = LeastLoadedRouter(["a", "b"])
        cost_router = CostAwareLeastLoadedRouter(["a", "b"])
        specs = [HEAVY, LIGHT, LIGHT]
        # Count-based: a, b, then back to a (1 slot each).
        assert count_router.route_batch(specs) == ["a", "b", "a"]
        # Cost-based: the heavy monopolises "a"; both lights fit on "b".
        assert cost_router.route_batch(specs) == ["a", "b", "b"]

    def test_uniform_costs_match_count_routing(self):
        specs = [LIGHT] * 7
        count_router = LeastLoadedRouter(["a", "b", "c"])
        cost_router = CostAwareLeastLoadedRouter(["a", "b", "c"])
        assert cost_router.route_batch(specs) == \
            count_router.route_batch(specs)

    def test_live_loads_weight_routing(self):
        loads = {"a": float(HEAVY.flops), "b": 0.0}
        router = CostAwareLeastLoadedRouter(["a", "b"], loads=loads)
        assert router.route(LIGHT) == "b"
        assert router.route_batch([LIGHT, LIGHT]) == ["b", "b"]

    def test_scalar_route_matches_parent_semantics(self):
        router = CostAwareLeastLoadedRouter(["a", "b"], loads={})
        assert router.route(HEAVY) == "a"  # ties break registration order


def _selections(records):
    return [r.n_threads for r in records]


class TestCostBudgetedServing:
    # Budget fits three lights (3L <= 3.5L) but not four; a heavy is
    # thousands of lights, so it always frames and batches alone.
    BUDGET = 3.5 * float(LIGHT.flops)

    def _replay(self, make_service, specs, **server_kwargs):
        server = GemmServer(make_service(), max_batch=16, max_wait_ms=50.0,
                            **server_kwargs)

        async def run():
            async with server:
                return await server.submit_many(specs)

        return server, asyncio.run(run())

    def test_selections_bitwise_identical_to_count_only(self, make_service):
        specs = [LIGHT] * 6 + [HEAVY] + [LIGHT] * 6
        _, budgeted = self._replay(make_service, specs,
                                   max_batch_cost=self.BUDGET)
        _, count_only = self._replay(make_service, specs)
        assert _selections(budgeted) == _selections(count_only)
        assert [r.spec for r in budgeted] == specs

    def test_budget_closes_batches_on_cost(self, make_service):
        specs = [LIGHT] * 9 + [HEAVY] + [LIGHT] * 3
        server, records = self._replay(make_service, specs,
                                       max_batch_cost=self.BUDGET)
        assert len(records) == len(specs)
        stats = server.stats()
        assert stats["max_batch_cost"] == self.BUDGET
        assert stats["batch_close_reasons"].get("cost", 0) > 0
        # Per-batch predicted-cost histogram is recorded under a budget.
        assert stats["batch_cost"]["count"] == stats["batches"]
        # No executed batch mixes the heavy with a light.
        assert max(server.telemetry.batch_sizes) <= 3

    def test_count_only_serving_records_no_cost(self, make_service):
        specs = [LIGHT] * 4
        server, _ = self._replay(make_service, specs)
        stats = server.stats()
        assert "max_batch_cost" not in stats
        assert "batch_cost" not in stats
        assert stats["batch_close_reasons"].get("cost", 0) == 0

    def test_per_routine_queue_wait_reported(self, make_service):
        server, _ = self._replay(make_service, [LIGHT] * 4,
                                 max_batch_cost=self.BUDGET)
        entry = server.stats()["routines"]["gemm"]
        assert entry["queue_wait_ms"]["n"] == 4
        assert server.telemetry.routine_wait("gemm").n == 4

    def test_server_cost_of_exposes_model_pricing(self, make_service):
        server = GemmServer(make_service())
        specs = [HEAVY, LIGHT, GemvSpec(64, 64)]
        assert server.cost_of(specs) == CostModel().cost_of(specs)

    def test_custom_cost_model_prices_batching(self, make_service):
        """A calibrated scale changes budgets, not selections."""
        scaled = CostModel(scales={"gemm": 2.0})
        specs = [LIGHT] * 8
        server, records = self._replay(make_service, specs,
                                       max_batch_cost=self.BUDGET,
                                       cost_model=scaled)
        # 2x scale halves how many lights fit: 1.75x budget -> 1 per
        # batch after the first admitted entry.
        assert len(records) == len(specs)
        assert max(server.telemetry.batch_sizes) <= 2
