"""Shard routing: determinism, MRO dispatch, tenant mapping."""

import asyncio

import pytest

from repro.blas.syrk import SyrkSpec
from repro.gemm.interface import GemmSpec
from repro.serve import (GemmServer, HashRouter, RoundRobinRouter,
                         SingleShardRouter, SpecTypeRouter, TenantRouter,
                         default_router)


class TestHashRouter:
    def test_same_shape_same_shard(self):
        a = HashRouter(["east", "west"])
        b = HashRouter(["east", "west"])  # a fresh instance
        for i in range(50):
            spec = GemmSpec(16 + i, 64, 64)
            assert a.route(spec) == b.route(spec)
            assert a.route(spec) == a.route(spec)

    def test_spreads_across_shards(self):
        router = HashRouter(["east", "west", "north"])
        hit = {router.route(GemmSpec(16 + i, 64, 64)) for i in range(60)}
        assert hit == {"east", "west", "north"}

    def test_accepts_dims_triples(self):
        router = HashRouter(["east", "west"])
        assert router.route((64, 64, 64)) == router.route(GemmSpec(64, 64, 64))

    def test_needs_shards(self):
        with pytest.raises(ValueError):
            HashRouter([])


class TestRoundRobinRouter:
    def test_cycles_in_order(self):
        router = RoundRobinRouter(["a", "b", "c"])
        spec = GemmSpec(8, 8, 8)
        assert [router.route(spec) for _ in range(7)] == \
            ["a", "b", "c", "a", "b", "c", "a"]


class TestSpecTypeRouter:
    def test_routes_by_type_with_default(self):
        router = SpecTypeRouter({SyrkSpec: "routines"}, default="gemm")
        assert router.route(SyrkSpec(n=8, k=8)) == "routines"
        assert router.route(GemmSpec(8, 8, 8)) == "gemm"

    def test_subclass_inherits_route(self):
        class FancyGemm(GemmSpec):
            pass

        router = SpecTypeRouter({GemmSpec: "gemm"})
        assert router.route(FancyGemm(8, 8, 8)) == "gemm"

    def test_no_match_without_default_raises(self):
        router = SpecTypeRouter({SyrkSpec: "routines"})
        with pytest.raises(TypeError):
            router.route(GemmSpec(8, 8, 8))

    def test_non_class_key_rejected(self):
        with pytest.raises(TypeError):
            SpecTypeRouter({"gemm": "gemm"})


class TestTenantRouter:
    def test_routes_by_client(self):
        router = TenantRouter({"team-a": "gadi", "team-b": "setonix"},
                              default="gadi")
        spec = GemmSpec(8, 8, 8)
        assert router.route(spec, client="team-b") == "setonix"
        assert router.route(spec, client="unknown") == "gadi"

    def test_unknown_client_without_default_raises(self):
        router = TenantRouter({"team-a": "gadi"})
        with pytest.raises(KeyError):
            router.route(GemmSpec(8, 8, 8), client="other")


class TestDefaultRouter:
    def test_single_shard_goes_direct(self):
        router = default_router(["only"])
        assert isinstance(router, SingleShardRouter)
        assert router.route(GemmSpec(8, 8, 8)) == "only"

    def test_many_shards_hash(self):
        assert isinstance(default_router(["a", "b"]), HashRouter)


class TestServerSharding:
    """End-to-end: a two-shard server routes deterministically."""

    def _serve(self, make_service, specs):
        shards = {"east": make_service(), "west": make_service()}
        server = GemmServer(shards, max_batch=8, max_wait_ms=5.0)

        async def run():
            async with server:
                return await server.submit_many(specs)

        records = asyncio.run(run())
        per_shard = {name: service.n_requests
                     for name, service in shards.items()}
        return records, per_shard

    def test_replay_reproduces_shard_assignment(self, make_service,
                                                distinct_specs):
        records_1, shard_counts_1 = self._serve(make_service, distinct_specs)
        records_2, shard_counts_2 = self._serve(make_service, distinct_specs)
        assert shard_counts_1 == shard_counts_2
        assert [r.n_threads for r in records_1] == \
            [r.n_threads for r in records_2]
        # Both shards genuinely participated.
        assert all(count > 0 for count in shard_counts_1.values())

    def test_explicit_shard_override(self, make_service):
        shards = {"east": make_service(), "west": make_service()}
        server = GemmServer(shards, max_batch=4, max_wait_ms=1.0)

        async def run():
            async with server:
                for _ in range(3):
                    await server.submit(GemmSpec(64, 64, 64), shard="west")

        asyncio.run(run())
        assert shards["west"].n_requests == 3
        assert shards["east"].n_requests == 0
