"""Shard routing: determinism, MRO dispatch, tenant mapping."""

import asyncio

import pytest

from repro.blas.syrk import SyrkSpec
from repro.gemm.interface import GemmSpec
from repro.serve import (GemmServer, HashRouter, RoundRobinRouter,
                         SingleShardRouter, SpecTypeRouter, TenantRouter,
                         default_router)


class TestHashRouter:
    def test_same_shape_same_shard(self):
        a = HashRouter(["east", "west"])
        b = HashRouter(["east", "west"])  # a fresh instance
        for i in range(50):
            spec = GemmSpec(16 + i, 64, 64)
            assert a.route(spec) == b.route(spec)
            assert a.route(spec) == a.route(spec)

    def test_spreads_across_shards(self):
        router = HashRouter(["east", "west", "north"])
        hit = {router.route(GemmSpec(16 + i, 64, 64)) for i in range(60)}
        assert hit == {"east", "west", "north"}

    def test_accepts_dims_triples(self):
        router = HashRouter(["east", "west"])
        assert router.route((64, 64, 64)) == router.route(GemmSpec(64, 64, 64))

    def test_needs_shards(self):
        with pytest.raises(ValueError):
            HashRouter([])


class TestRoundRobinRouter:
    def test_cycles_in_order(self):
        router = RoundRobinRouter(["a", "b", "c"])
        spec = GemmSpec(8, 8, 8)
        assert [router.route(spec) for _ in range(7)] == \
            ["a", "b", "c", "a", "b", "c", "a"]


class TestSpecTypeRouter:
    def test_routes_by_type_with_default(self):
        router = SpecTypeRouter({SyrkSpec: "routines"}, default="gemm")
        assert router.route(SyrkSpec(n=8, k=8)) == "routines"
        assert router.route(GemmSpec(8, 8, 8)) == "gemm"

    def test_subclass_inherits_route(self):
        class FancyGemm(GemmSpec):
            pass

        router = SpecTypeRouter({GemmSpec: "gemm"})
        assert router.route(FancyGemm(8, 8, 8)) == "gemm"

    def test_no_match_without_default_raises(self):
        router = SpecTypeRouter({SyrkSpec: "routines"})
        with pytest.raises(TypeError):
            router.route(GemmSpec(8, 8, 8))

    def test_non_class_key_rejected(self):
        with pytest.raises(TypeError):
            SpecTypeRouter({"gemm": "gemm"})


class TestTenantRouter:
    def test_routes_by_client(self):
        router = TenantRouter({"team-a": "gadi", "team-b": "setonix"},
                              default="gadi")
        spec = GemmSpec(8, 8, 8)
        assert router.route(spec, client="team-b") == "setonix"
        assert router.route(spec, client="unknown") == "gadi"

    def test_unknown_client_without_default_raises(self):
        router = TenantRouter({"team-a": "gadi"})
        with pytest.raises(KeyError):
            router.route(GemmSpec(8, 8, 8), client="other")


class TestDefaultRouter:
    def test_single_shard_goes_direct(self):
        router = default_router(["only"])
        assert isinstance(router, SingleShardRouter)
        assert router.route(GemmSpec(8, 8, 8)) == "only"

    def test_many_shards_hash(self):
        assert isinstance(default_router(["a", "b"]), HashRouter)


class TestServerSharding:
    """End-to-end: a two-shard server routes deterministically."""

    def _serve(self, make_service, specs):
        shards = {"east": make_service(), "west": make_service()}
        server = GemmServer(shards, max_batch=8, max_wait_ms=5.0)

        async def run():
            async with server:
                return await server.submit_many(specs)

        records = asyncio.run(run())
        per_shard = {name: service.n_requests
                     for name, service in shards.items()}
        return records, per_shard

    def test_replay_reproduces_shard_assignment(self, make_service,
                                                distinct_specs):
        records_1, shard_counts_1 = self._serve(make_service, distinct_specs)
        records_2, shard_counts_2 = self._serve(make_service, distinct_specs)
        assert shard_counts_1 == shard_counts_2
        assert [r.n_threads for r in records_1] == \
            [r.n_threads for r in records_2]
        # Both shards genuinely participated.
        assert all(count > 0 for count in shard_counts_1.values())

    def test_explicit_shard_override(self, make_service):
        shards = {"east": make_service(), "west": make_service()}
        server = GemmServer(shards, max_batch=4, max_wait_ms=1.0)

        async def run():
            async with server:
                for _ in range(3):
                    await server.submit(GemmSpec(64, 64, 64), shard="west")

        asyncio.run(run())
        assert shards["west"].n_requests == 3
        assert shards["east"].n_requests == 0


class TestConsistentHashRouter:
    def test_deterministic_across_instances(self):
        from repro.serve import ConsistentHashRouter

        a = ConsistentHashRouter(["w0", "w1", "w2"])
        b = ConsistentHashRouter(["w0", "w1", "w2"])
        specs = [GemmSpec(16 + i, 64, 64) for i in range(50)]
        assert [a.route(s) for s in specs] == [b.route(s) for s in specs]
        assert a.route_batch(specs) == [a.route(s) for s in specs]

    def test_spreads_across_shards(self):
        from repro.serve import ConsistentHashRouter

        router = ConsistentHashRouter(["w0", "w1", "w2"])
        hit = {router.route(GemmSpec(16 + i, 64, 64)) for i in range(80)}
        assert hit == {"w0", "w1", "w2"}

    def test_removal_only_remaps_lost_shard_keys(self):
        from repro.serve import ConsistentHashRouter

        router = ConsistentHashRouter(["w0", "w1", "w2"])
        specs = [GemmSpec(16 + i, 64, 64) for i in range(100)]
        before = [router.route(s) for s in specs]
        router.remove("w1")
        after = [router.route(s) for s in specs]
        for owner_before, owner_after in zip(before, after):
            if owner_before != "w1":
                # Keys that did not live on the removed shard stay put —
                # the property a plain hash % n router lacks.
                assert owner_after == owner_before
            else:
                assert owner_after in {"w0", "w2"}

    def test_add_restores_prior_assignment(self):
        from repro.serve import ConsistentHashRouter

        router = ConsistentHashRouter(["w0", "w1", "w2"])
        specs = [GemmSpec(16 + i, 64, 64) for i in range(60)]
        before = [router.route(s) for s in specs]
        router.remove("w1")
        router.add("w1")
        assert [router.route(s) for s in specs] == before

    def test_cannot_empty_the_ring(self):
        from repro.serve import ConsistentHashRouter

        router = ConsistentHashRouter(["only"])
        with pytest.raises(ValueError):
            router.remove("only")


class TestLeastLoadedRouter:
    def test_routes_to_minimum_with_stable_ties(self):
        from repro.serve import LeastLoadedRouter

        loads = {"w0": 2, "w1": 0, "w2": 0}
        router = LeastLoadedRouter(["w0", "w1", "w2"], loads=loads)
        # Tie between w1 and w2 breaks by registration order.
        assert router.route(GemmSpec(8, 8, 8)) == "w1"
        loads["w1"] = 5
        assert router.route(GemmSpec(8, 8, 8)) == "w2"

    def test_accepts_callable_loads(self):
        from repro.serve import LeastLoadedRouter

        live = {"w0": 3, "w1": 1}
        router = LeastLoadedRouter(["w0", "w1"], loads=lambda: live)
        assert router.route(GemmSpec(8, 8, 8)) == "w1"

    def test_batch_spreads_by_simulated_admission(self):
        from repro.serve import LeastLoadedRouter

        router = LeastLoadedRouter(["w0", "w1"],
                                   loads={"w0": 0, "w1": 0})
        specs = [GemmSpec(8 + i, 8, 8) for i in range(6)]
        assignment = router.route_batch(specs)
        # Each assignment counts toward the load the next one sees, so
        # an even burst splits evenly instead of all landing on w0.
        assert assignment.count("w0") == 3
        assert assignment.count("w1") == 3


class TestCanaryRouter:
    def test_split_is_deterministic_and_disjoint(self):
        from repro.serve import CanaryRouter, SingleShardRouter

        base = SingleShardRouter("stable")
        router = CanaryRouter(base, "canary", fraction=0.5)
        specs = [GemmSpec(16 + i, 64, 64) for i in range(60)]
        first = [router.route(s) for s in specs]
        assert first == [router.route(s) for s in specs]
        assert first == router.route_batch(specs)
        assert {"stable", "canary"} == set(first)

    def test_fraction_bounds(self):
        from repro.serve import CanaryRouter, SingleShardRouter

        base = SingleShardRouter("stable")
        all_canary = CanaryRouter(base, "canary", fraction=1.0)
        no_canary = CanaryRouter(base, "canary", fraction=0.0)
        specs = [GemmSpec(16 + i, 64, 64) for i in range(20)]
        assert set(all_canary.route_batch(specs)) == {"canary"}
        assert set(no_canary.route_batch(specs)) == {"stable"}
        with pytest.raises(ValueError):
            CanaryRouter(base, "canary", fraction=1.5)

    def test_stateful_base_sees_only_its_own_slots(self):
        from repro.serve import CanaryRouter, RoundRobinRouter

        specs = [GemmSpec(16 + i, 64, 64) for i in range(40)]
        solo = RoundRobinRouter(["a", "b"])
        wrapped = RoundRobinRouter(["a", "b"])
        router = CanaryRouter(wrapped, "canary", fraction=0.4)
        assignment = router.route_batch(specs)
        rest = [name for name in assignment if name != "canary"]
        # The wrapped round-robin advanced once per non-canary slot:
        # its assignment equals routing just those slots standalone.
        assert rest == solo.route_batch(specs[:len(rest)])
