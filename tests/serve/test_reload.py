"""Server hot-reload: zero-downtime bundle swap between micro-batches."""

import asyncio

import numpy as np
import pytest

from repro.core.config import AdsalaConfig
from repro.core.training import TrainedBundle
from repro.gemm.interface import GemmSpec
from repro.serve.request import ServerClosed
from repro.serve.server import GemmServer

from .conftest import GRID


class OracleModel:
    def __init__(self, target: int = 8):
        self.target = target

    def predict(self, X):
        return np.abs(X[:, 3] - self.target)


def oracle_bundle(target: int):
    return TrainedBundle(
        config=AdsalaConfig(machine="tiny", thread_grid=list(GRID),
                            model_name=f"oracle-{target}"),
        pipeline=None, model=OracleModel(target))


def run(coro):
    return asyncio.run(coro)


class TestServerReload:
    def test_queued_requests_finish_on_old_bundle(self, make_service,
                                                  distinct_specs):
        """FIFO ordering: everything admitted before the reload resolves
        with the old model, everything after with the new one."""

        async def scenario():
            async with GemmServer(make_service(cache_size=64), max_batch=4,
                                  max_wait_ms=0.5) as server:
                before_task = asyncio.gather(
                    *(server.submit(s) for s in distinct_specs))
                await asyncio.sleep(0)  # admit the burst first
                reload_info = await server.reload(oracle_bundle(1))
                after = await server.submit_many(distinct_specs[:5])
                before = await before_task
                return server, reload_info, before, after

        server, info, before, after = run(scenario())
        assert info["default"]["model_name"] == "oracle-1"
        assert [r.n_threads for r in before] == [8] * len(before)
        assert [r.n_threads for r in after] == [1] * len(after)
        stats = server.stats()
        assert stats["served"] == len(before) + len(after)
        assert stats["rejected"] == 0 and stats["failed"] == 0
        assert stats["reloads"] == 1

    def test_reload_under_sustained_load_drops_nothing(self, make_service,
                                                       distinct_specs):
        """Requests keep flowing while the swap happens; every one
        resolves, none is rejected, and no batch mixes bundles."""

        async def scenario():
            service = make_service(cache_size=256)
            async with GemmServer(service, max_batch=8,
                                  max_wait_ms=0.2) as server:
                async def client(i):
                    records = []
                    for spec in distinct_specs:
                        records.append(await server.submit(
                            spec, client=f"c{i}"))
                        await asyncio.sleep(0)
                    return records

                clients = asyncio.gather(*(client(i) for i in range(4)))
                await asyncio.sleep(0.005)
                await server.reload(oracle_bundle(1))
                results = await clients
                return server, service, results

        server, service, results = run(scenario())
        flat = [r for records in results for r in records]
        assert len(flat) == 4 * len(distinct_specs)
        assert {r.n_threads for r in flat} <= {8, 1}
        stats = server.stats()
        assert stats["rejected"] == 0 and stats["failed"] == 0
        assert stats["served"] == len(flat)
        assert service.bundle_generation == 1
        # The swap is never mid-batch: per-request choices within one
        # batch come from one predictor, so the old-target records all
        # precede the new-target records in dispatch order.
        choices = [r.n_threads for r in service.history]
        if 1 in choices and 8 in choices:
            assert choices.index(1) > len(choices) - 1 - choices[::-1].index(8)

    def test_reload_single_shard_leaves_others(self, make_service):
        async def scenario():
            shards = {"a": make_service(), "b": make_service()}
            async with GemmServer(shards, max_batch=2,
                                  max_wait_ms=0.2) as server:
                await server.reload(oracle_bundle(1), shard="a")
                ra = await server.submit(GemmSpec(64, 64, 64), shard="a")
                rb = await server.submit(GemmSpec(64, 64, 64), shard="b")
                return ra, rb, server.stats()

        ra, rb, stats = run(scenario())
        assert ra.n_threads == 1
        assert rb.n_threads == 8  # untouched shard still on the oracle
        assert stats["shards"]["a"]["reloads"] == 1
        assert stats["shards"]["b"]["reloads"] == 0

    def test_unknown_shard_rejected(self, make_service):
        async def scenario():
            async with GemmServer(make_service()) as server:
                with pytest.raises(KeyError, match="unknown shard"):
                    await server.reload(oracle_bundle(1), shard="nope")

        run(scenario())

    def test_reload_before_start_raises(self, make_service):
        async def scenario():
            server = GemmServer(make_service())
            with pytest.raises(ServerClosed, match="not started"):
                await server.reload(oracle_bundle(1))

        run(scenario())

    def test_stats_and_table_counters_monotonic_across_reload(self,
                                                              tiny_sim):
        """Reload retires a predictor but never rewinds a counter: table
        hits, per-routine served counts and engine totals all keep
        counting across the swap (the old predictor's tallies fold into
        the retired-counter bucket instead of vanishing)."""
        from repro.core.features import FeatureBuilder
        from repro.core.predictor import ThreadPredictor
        from repro.engine import GemmService, PredictionCache

        from .test_observability import LATTICE, oracle_table

        predictor = ThreadPredictor(
            FeatureBuilder("both"), None, OracleModel(), GRID,
            cache=PredictionCache(maxsize=4), table=oracle_table())
        service = GemmService(predictor, backend=tiny_sim.backend(GRID))

        async def scenario():
            async with GemmServer(service, max_batch=4,
                                  max_wait_ms=0.5) as server:
                await server.submit_many(LATTICE[:10])
                before = server.stats()
                tables_before = service.table_counters()
                await server.reload(oracle_bundle(1))
                await server.submit_many(LATTICE[:10])
                return server, before, tables_before

        server, before, tables_before = run(scenario())
        after = server.stats()
        tables_after = service.table_counters()

        # Every pre-reload table hit survives the swap (the reloaded
        # oracle bundle has no table, so the count stays put rather
        # than resetting to zero with the fresh predictor).
        assert tables_before["table_hits"] == 10
        assert tables_after["table_hits"] == tables_before["table_hits"]
        assert tables_after["table_fallbacks"] \
            >= tables_before["table_fallbacks"]

        # Per-routine serving stats keep counting across the swap.
        assert before["routines"]["gemm"]["served"] == 10
        assert after["routines"]["gemm"]["served"] == 20
        assert after["reloads"] == 1

        # Engine aggregates are monotonic too — the reload folded the
        # retired predictor's evaluations instead of dropping them.
        for key in ("served", "submitted", "evaluations", "model_passes"):
            assert after[key] >= before[key], key
        assert after["shards"]["default"]["requests"] \
            >= before["shards"]["default"]["requests"]

    def test_failed_reload_keeps_old_bundle(self, make_service):
        class BrokenBundle:
            """No .config / .predictor: service.reload must raise."""

        async def scenario():
            async with GemmServer(make_service(), max_batch=2,
                                  max_wait_ms=0.2) as server:
                with pytest.raises(AttributeError):
                    await server.reload(BrokenBundle())
                record = await server.submit(GemmSpec(48, 48, 48))
                return record, server.stats()

        record, stats = run(scenario())
        assert record.n_threads == 8  # old bundle still serving
        assert stats["reloads"] == 0
