"""Histogram tree machinery shared by the ensembles."""

import numpy as np
import pytest

from repro.ml._histtree import (TreeParams, bin_features, build_hist_tree,
                                quantile_bin_edges)


@pytest.fixture
def binned(rng):
    X = rng.standard_normal((500, 4))
    edges = quantile_bin_edges(X, max_bins=32)
    codes = bin_features(X, edges)
    return X, codes, edges


class TestBinning:
    def test_codes_within_range(self, binned):
        _, codes, edges = binned
        for j in range(codes.shape[1]):
            assert codes[:, j].min() >= 0
            assert codes[:, j].max() <= len(edges[j])

    def test_constant_feature_no_edges(self):
        X = np.column_stack([np.ones(50), np.arange(50.0)])
        edges = quantile_bin_edges(X, max_bins=8)
        assert len(edges[0]) == 0
        assert len(edges[1]) > 0

    def test_monotone_binning(self, binned):
        X, codes, _ = binned
        j = 0
        order = np.argsort(X[:, j])
        assert (np.diff(codes[order, j]) >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_bin_edges(np.zeros((3, 1)), max_bins=1)
        with pytest.raises(ValueError):
            bin_features(np.zeros((3, 2)), [np.array([])])


class TestTreeGrowth:
    def _grow(self, X, y, **kw):
        edges = quantile_bin_edges(X, max_bins=64)
        codes = bin_features(X, edges)
        params = TreeParams(**kw)
        return build_hist_tree(codes, edges, g=y, h=np.ones(len(y)), params=params)

    def test_step_function_learned(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 3.0
        tree = self._grow(X, y, max_depth=2)
        pred = tree.predict(X)
        np.testing.assert_allclose(pred, y, atol=1e-9)

    def test_leaf_value_is_mean(self):
        X = np.zeros((10, 1))
        y = np.arange(10.0)
        tree = self._grow(X, y, max_depth=3)
        np.testing.assert_allclose(tree.predict(X), y.mean())

    def test_max_depth_limits_nodes(self, rng):
        X = rng.standard_normal((300, 3))
        y = rng.standard_normal(300)
        shallow = self._grow(X, y, max_depth=2)
        deep = self._grow(X, y, max_depth=8)
        assert shallow.n_nodes < deep.n_nodes
        assert shallow.max_depth_ <= 2

    def test_max_leaves_cap(self, rng):
        X = rng.standard_normal((300, 3))
        y = rng.standard_normal(300)
        tree = self._grow(X, y, max_depth=30, max_leaves=5)
        assert tree.n_leaves <= 5

    def test_leaf_wise_picks_best_gain_first(self):
        """With a 2-leaf budget, the bigger step must be split first."""
        X = np.concatenate([np.zeros(50), np.ones(50), np.full(50, 2.0)]).reshape(-1, 1)
        y = np.concatenate([np.zeros(50), np.zeros(50), np.full(50, 10.0)])
        tree = self._grow(X, y, max_depth=10, max_leaves=2)
        # The only split separates the 10s from the rest.
        assert tree.predict(np.array([[2.0]]))[0] == pytest.approx(10.0)
        assert tree.predict(np.array([[0.0]]))[0] == pytest.approx(0.0)

    def test_reg_lambda_shrinks_leaves(self):
        X = np.array([[0.0], [1.0]] * 10)
        y = np.array([0.0, 10.0] * 10)
        plain = self._grow(X, y, max_depth=2, reg_lambda=0.0)
        reg = self._grow(X, y, max_depth=2, reg_lambda=50.0)
        assert abs(reg.predict(np.array([[1.0]]))[0]) \
            < abs(plain.predict(np.array([[1.0]]))[0])

    def test_gamma_blocks_weak_splits(self, rng):
        X = rng.standard_normal((200, 2))
        y = 0.01 * rng.standard_normal(200)  # almost pure noise
        tree = self._grow(X, y, max_depth=6, gamma=1e6)
        assert tree.n_leaves == 1

    def test_min_samples_leaf_respected(self, rng):
        X = rng.standard_normal((100, 2))
        y = rng.standard_normal(100)
        tree = self._grow(X, y, max_depth=20, min_samples_leaf=25)
        assert tree.n_leaves <= 4

    def test_sample_subset_restricts_fit(self):
        X = np.concatenate([np.zeros(50), np.ones(50)]).reshape(-1, 1)
        y = np.concatenate([np.zeros(50), np.ones(50) * 4.0])
        edges = quantile_bin_edges(X, max_bins=4)
        codes = bin_features(X, edges)
        # Only the first half (all zeros) visible: no split possible.
        tree = build_hist_tree(codes, edges, g=y, h=np.ones(100),
                               params=TreeParams(max_depth=4),
                               sample_indices=np.arange(50))
        assert tree.n_leaves == 1
        assert tree.predict(np.array([[0.0]]))[0] == pytest.approx(0.0)

    def test_feature_subset_restricts_splits(self, rng):
        X = np.column_stack([rng.standard_normal(200),
                             np.linspace(0, 1, 200)])
        y = (X[:, 1] > 0.5).astype(float)
        # Only the uninformative feature 0 is allowed.
        edges = quantile_bin_edges(X, max_bins=16)
        codes = bin_features(X, edges)
        tree = build_hist_tree(codes, edges, g=y, h=np.ones(200),
                               params=TreeParams(max_depth=3),
                               feature_subset=np.array([0]))
        assert (tree.feature[tree.feature >= 0] == 0).all()

    def test_decision_path_depth(self, rng):
        X = rng.standard_normal((100, 2))
        y = rng.standard_normal(100)
        tree = self._grow(X, y, max_depth=4)
        depths = tree.decision_path_depth(X)
        assert (depths <= tree.max_depth_).all()
        assert (depths >= 0).all()
