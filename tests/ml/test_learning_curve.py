"""Learning curves (paper Section VI-A)."""

import numpy as np
import pytest

from repro.ml.learning_curve import learning_curve
from repro.ml.linear import Ridge
from repro.ml.model_selection import KFold
from repro.ml.xgb import XGBRegressor


class TestLearningCurve:
    def test_shapes(self, regression_data):
        X, y = regression_data
        sizes, train, val = learning_curve(
            Ridge(), X, y, train_sizes=[0.2, 0.5, 1.0],
            cv=KFold(3, random_state=0), random_state=0)
        assert len(sizes) == train.shape[0] == val.shape[0]
        assert train.shape[1] == val.shape[1] == 3

    def test_validation_loss_improves_with_data(self, regression_data):
        """More data should not hurt validation RMSE (the paper's
        justification that 1763 samples suffice)."""
        X, y = regression_data
        sizes, _, val = learning_curve(
            XGBRegressor(n_estimators=30, random_state=0), X, y,
            train_sizes=[0.1, 1.0], cv=KFold(3, random_state=0), random_state=0)
        assert val.mean(axis=1)[-1] < val.mean(axis=1)[0]

    def test_absolute_sizes_accepted(self, regression_data):
        X, y = regression_data
        sizes, _, _ = learning_curve(Ridge(), X, y, train_sizes=[50, 100],
                                     cv=KFold(3, random_state=0), random_state=0)
        assert list(sizes) == [50, 100]

    def test_sizes_clamped_to_fold_train_size(self, regression_data):
        X, y = regression_data
        sizes, _, _ = learning_curve(Ridge(), X, y, train_sizes=[10 ** 9],
                                     cv=KFold(3, random_state=0), random_state=0)
        assert sizes[0] <= len(y)
