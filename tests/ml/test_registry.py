"""The candidate registry matches the paper's Table I."""

import pytest

from repro.ml.registry import candidate_models

PAPER_TABLE_ROWS = {
    "Linear Regression", "ElasticNet", "Bayes Regression", "Decision Tree",
    "Random Forest", "AdaBoost", "XGBoost", "LightGBM",
}


class TestRegistry:
    def test_covers_tables_three_and_four(self):
        names = {c.name for c in candidate_models()}
        assert names == PAPER_TABLE_ROWS

    def test_extras_add_knn_and_svm(self):
        names = {c.name for c in candidate_models(include_extra=True)}
        assert "KNN Regressor" in names and "SVM Regressor" in names

    def test_families_assigned(self):
        for cand in candidate_models(include_extra=True):
            assert cand.family in ("linear", "tree", "other")

    def test_fast_budget_shrinks_ensembles(self):
        fast = {c.name: c for c in candidate_models(budget="fast")}
        full = {c.name: c for c in candidate_models(budget="full")}
        assert (fast["XGBoost"].defaults["n_estimators"]
                < full["XGBoost"].defaults["n_estimators"])

    def test_build_applies_overrides(self):
        xgb = next(c for c in candidate_models(budget="fast") if c.name == "XGBoost")
        model = xgb.build(max_depth=3)
        assert model.max_depth == 3
        assert model.n_estimators == xgb.defaults["n_estimators"]

    def test_every_candidate_fits_tiny_data(self, rng):
        import numpy as np

        X = rng.standard_normal((60, 4))
        y = rng.standard_normal(60)
        for cand in candidate_models(budget="fast", include_extra=True):
            model = cand.build()
            # Shrink for test speed where possible.
            if hasattr(model, "n_estimators"):
                model.n_estimators = 3
            model.fit(X, y)
            assert np.isfinite(model.predict(X[:5])).all(), cand.name

    def test_unknown_budget(self):
        with pytest.raises(ValueError):
            candidate_models(budget="huge")

    def test_search_spaces_valid_params(self):
        for cand in candidate_models(include_extra=True):
            model = cand.build()
            valid = set(model._param_names())
            assert set(cand.search_space) <= valid, cand.name
