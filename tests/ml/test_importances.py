"""Gain-based feature importances on the tree ensembles."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.lgbm import LGBMRegressor
from repro.ml.xgb import XGBRegressor

ENSEMBLES = [
    lambda: RandomForestRegressor(n_estimators=10, random_state=0),
    lambda: XGBRegressor(n_estimators=30, random_state=0),
    lambda: LGBMRegressor(n_estimators=30, random_state=0),
]


@pytest.mark.parametrize("factory", ENSEMBLES)
class TestFeatureImportances:
    def test_normalised(self, factory, rng):
        X = rng.standard_normal((300, 5))
        y = X[:, 1] * 3 + 0.1 * rng.standard_normal(300)
        model = factory().fit(X, y)
        imp = model.feature_importances_
        assert imp.shape == (5,)
        assert imp.sum() == pytest.approx(1.0)
        assert (imp >= 0).all()

    def test_informative_feature_dominates(self, factory, rng):
        X = rng.standard_normal((400, 6))
        y = 5.0 * X[:, 2] + 0.05 * rng.standard_normal(400)
        model = factory().fit(X, y)
        imp = model.feature_importances_
        assert np.argmax(imp) == 2
        assert imp[2] > 0.5

    def test_unfitted_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().feature_importances_


class TestTable2FeatureImportances:
    def test_parallel_features_matter_for_runtime(self, tiny_dataset):
        """On the ADSALA task, the per-thread (Group 2) features should
        carry real importance — the premise of the Table II design."""
        from repro.core.features import FeatureBuilder

        fb = FeatureBuilder("both")
        X = fb.build(tiny_dataset.m, tiny_dataset.k, tiny_dataset.n,
                     tiny_dataset.threads)
        y = np.log(tiny_dataset.runtime)
        model = XGBRegressor(n_estimators=40, random_state=0).fit(X, y)
        imp = model.feature_importances_
        group2 = imp[9:].sum()  # the /n_threads features
        assert group2 > 0.15
