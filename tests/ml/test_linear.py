"""OLS and ridge: recover known coefficients, regularisation behaviour."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, Ridge


@pytest.fixture
def linear_data(rng):
    X = rng.standard_normal((200, 4))
    coef = np.array([2.0, -1.0, 0.5, 0.0])
    y = X @ coef + 3.0
    return X, y, coef


class TestLinearRegression:
    def test_recovers_exact_coefficients(self, linear_data):
        X, y, coef = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-10)
        assert model.intercept_ == pytest.approx(3.0)

    def test_without_intercept(self, rng):
        X = rng.standard_normal((100, 2))
        y = X @ np.array([1.0, 2.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [1.0, 2.0], atol=1e-10)

    def test_rank_deficient_does_not_blow_up(self, rng):
        X = rng.standard_normal((50, 3))
        X = np.column_stack([X, X[:, 0]])  # duplicated column
        y = X[:, 0] + 1.0
        model = LinearRegression().fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_score_is_r2(self, linear_data):
        X, y, _ = linear_data
        assert LinearRegression().fit(X, y).score(X, y) == pytest.approx(1.0)


class TestRidge:
    def test_zero_alpha_matches_ols(self, linear_data):
        X, y, _ = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage_monotone_in_alpha(self, linear_data):
        X, y, _ = linear_data
        norms = [np.linalg.norm(Ridge(alpha=a).fit(X, y).coef_)
                 for a in (0.0, 10.0, 1000.0)]
        assert norms[0] > norms[1] > norms[2]

    def test_intercept_not_penalised(self, rng):
        X = rng.standard_normal((100, 2))
        y = X @ np.array([0.1, -0.1]) + 100.0  # huge offset
        model = Ridge(alpha=1e6).fit(X, y)
        # Coefs are crushed but the intercept still finds the offset.
        assert abs(model.intercept_ - 100.0) < 1.0

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0).fit(np.eye(2), np.ones(2))
