"""Random forest, AdaBoost.R2, XGBoost-style and LightGBM-style boosting."""

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.lgbm import LGBMRegressor
from repro.ml.metrics import r2_score
from repro.ml.xgb import XGBRegressor

ENSEMBLES = [
    lambda: RandomForestRegressor(n_estimators=15, random_state=0),
    lambda: AdaBoostRegressor(n_estimators=10, max_depth=4, random_state=0),
    lambda: XGBRegressor(n_estimators=60, random_state=0),
    lambda: LGBMRegressor(n_estimators=60, random_state=0),
]


@pytest.mark.parametrize("factory", ENSEMBLES)
class TestCommonEnsembleBehaviour:
    def test_beats_mean_predictor(self, factory, regression_data):
        X, y = regression_data
        model = factory().fit(X[:400], y[:400])
        # 400 samples of a strong-interaction target: weaker ensembles
        # (RF without huge depth, shallow AdaBoost) land around 0.45.
        assert r2_score(y[400:], model.predict(X[400:])) > 0.35

    def test_deterministic_given_seed(self, factory, regression_data):
        X, y = regression_data
        a = factory().fit(X, y).predict(X[:20])
        b = factory().fit(X, y).predict(X[:20])
        np.testing.assert_array_equal(a, b)

    def test_feature_mismatch_raises(self, factory, regression_data):
        X, y = regression_data
        model = factory().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :3])

    def test_constant_target(self, factory):
        X = np.arange(40.0).reshape(-1, 1)
        y = np.full(40, 3.0)
        model = factory().fit(X, y)
        np.testing.assert_allclose(model.predict(X), 3.0, atol=1e-9)


class TestRandomForestSpecifics:
    def test_more_trees_reduce_variance(self, regression_data):
        X, y = regression_data
        scores = []
        for n in (1, 20):
            preds = []
            for seed in range(3):
                model = RandomForestRegressor(n_estimators=n, random_state=seed)
                preds.append(model.fit(X[:400], y[:400]).predict(X[400:]))
            scores.append(np.mean(np.var(preds, axis=0)))
        assert scores[1] < scores[0]  # ensemble variance shrinks

    def test_no_bootstrap_with_all_features_is_deterministic_across_seeds(self, regression_data):
        X, y = regression_data
        a = RandomForestRegressor(n_estimators=3, bootstrap=False,
                                  max_features=None, random_state=0)
        b = RandomForestRegressor(n_estimators=3, bootstrap=False,
                                  max_features=None, random_state=99)
        np.testing.assert_allclose(a.fit(X, y).predict(X[:10]),
                                   b.fit(X, y).predict(X[:10]))

    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0).fit(np.eye(4), np.ones(4))

    def test_max_features_modes(self, regression_data):
        X, y = regression_data
        for mode in ("sqrt", "log2", 3, None):
            model = RandomForestRegressor(n_estimators=3, max_features=mode,
                                          random_state=0)
            assert np.isfinite(model.fit(X, y).predict(X[:5])).all()


class TestAdaBoostSpecifics:
    def test_weighted_median_prediction_bounded(self, regression_data):
        X, y = regression_data
        model = AdaBoostRegressor(n_estimators=8, random_state=0).fit(X, y)
        pred = model.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @pytest.mark.parametrize("loss", ["linear", "square", "exponential"])
    def test_all_losses_run(self, loss, regression_data):
        X, y = regression_data
        model = AdaBoostRegressor(n_estimators=5, loss=loss, random_state=0)
        assert np.isfinite(model.fit(X, y).predict(X[:5])).all()

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            AdaBoostRegressor(loss="huber").fit(np.eye(3), np.ones(3))

    def test_perfect_learner_stops_early(self):
        X = np.array([[0.0], [1.0]] * 20)
        y = np.array([0.0, 1.0] * 20)
        model = AdaBoostRegressor(n_estimators=50, max_depth=2,
                                  random_state=0).fit(X, y)
        assert len(model.trees_) < 50


class TestXGBSpecifics:
    def test_boosting_improves_train_fit(self, regression_data):
        X, y = regression_data
        stages = list(XGBRegressor(n_estimators=30, random_state=0)
                      .fit(X, y).staged_predict(X))
        first = r2_score(y, stages[0])
        last = r2_score(y, stages[-1])
        assert last > first

    def test_learning_rate_zero_predicts_base(self, regression_data):
        X, y = regression_data
        model = XGBRegressor(n_estimators=5, learning_rate=0.0,
                             random_state=0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y.mean(), atol=1e-9)

    def test_early_stopping_truncates(self, regression_data):
        X, y = regression_data
        model = XGBRegressor(n_estimators=300, early_stopping_rounds=5,
                             random_state=0).fit(X, y)
        assert len(model.trees_) < 300

    def test_subsampling_validation(self):
        with pytest.raises(ValueError):
            XGBRegressor(subsample=0.0).fit(np.eye(3), np.ones(3))

    def test_row_and_column_subsampling_run(self, regression_data):
        X, y = regression_data
        model = XGBRegressor(n_estimators=10, subsample=0.7,
                             colsample_bytree=0.5, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.3


class TestLGBMSpecifics:
    def test_num_leaves_respected(self, regression_data):
        X, y = regression_data
        model = LGBMRegressor(n_estimators=5, num_leaves=4,
                              goss_top=0.0, goss_other=0.0,
                              random_state=0).fit(X, y)
        assert all(t.n_leaves <= 4 for t in model.trees_)

    def test_goss_matches_full_fit_roughly(self, regression_data):
        X, y = regression_data
        goss = LGBMRegressor(n_estimators=40, random_state=0).fit(X, y)
        full = LGBMRegressor(n_estimators=40, goss_top=0.0, goss_other=0.0,
                             random_state=0).fit(X, y)
        assert abs(r2_score(y, goss.predict(X))
                   - r2_score(y, full.predict(X))) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            LGBMRegressor(num_leaves=1).fit(np.eye(3), np.ones(3))
        with pytest.raises(ValueError):
            LGBMRegressor(goss_top=1.2).fit(np.eye(3), np.ones(3))
