"""Exact CART: splits, pruning controls, weighted fitting."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor


class TestBasicFitting:
    def test_perfectly_separable_step(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0.0, 0.0, 0.0, 5.0, 5.0, 5.0])
        model = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)
        assert model.n_leaves_ == 2

    def test_depth_zero_equivalent_is_mean(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = np.arange(10.0)
        model = DecisionTreeRegressor(max_depth=0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y.mean())

    def test_overfits_training_data_when_unbounded(self, rng):
        X = rng.standard_normal((100, 3))
        y = rng.standard_normal(100)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.score(X, y) > 0.99

    def test_constant_target_single_leaf(self):
        X = np.arange(20.0).reshape(-1, 1)
        model = DecisionTreeRegressor().fit(X, np.full(20, 7.0))
        assert model.n_leaves_ == 1
        assert model.predict([[100.0]])[0] == 7.0


class TestPruningControls:
    def test_max_depth_respected(self, rng):
        X = rng.standard_normal((200, 4))
        y = rng.standard_normal(200)
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.depth_ <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.standard_normal((100, 2))
        y = rng.standard_normal(100)
        model = DecisionTreeRegressor(min_samples_leaf=20).fit(X, y)
        # No leaf may contain fewer than 20 samples => at most 5 leaves.
        assert model.n_leaves_ <= 5

    def test_min_samples_split_blocks_tiny_nodes(self):
        X = np.arange(4.0).reshape(-1, 1)
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = DecisionTreeRegressor(min_samples_split=10).fit(X, y)
        assert model.n_leaves_ == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1).fit(np.eye(3), np.ones(3))


class TestWeightedFitting:
    def test_weights_shift_leaf_values(self):
        X = np.zeros((4, 1))
        y = np.array([0.0, 0.0, 10.0, 10.0])
        w = np.array([3.0, 3.0, 1.0, 1.0])
        model = DecisionTreeRegressor(max_depth=0).fit(X, y, sample_weight=w)
        assert model.predict([[0.0]])[0] == pytest.approx(2.5)  # weighted mean

    def test_zero_weight_samples_ignored_in_value(self):
        X = np.array([[0.0], [0.0], [1.0]])
        y = np.array([1.0, 1.0, 100.0])
        w = np.array([1.0, 1.0, 0.0])
        model = DecisionTreeRegressor(max_depth=0).fit(X, y, sample_weight=w)
        assert model.predict([[0.5]])[0] == pytest.approx(1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.eye(2), np.ones(2),
                                        sample_weight=[-1.0, 1.0])


class TestPrediction:
    def test_feature_count_mismatch(self, rng):
        model = DecisionTreeRegressor().fit(rng.standard_normal((20, 3)),
                                            rng.standard_normal(20))
        with pytest.raises(ValueError, match="features"):
            model.predict(rng.standard_normal((5, 2)))

    def test_max_features_subsampling_runs(self, rng):
        X = rng.standard_normal((100, 8))
        y = X[:, 0] * 2
        model = DecisionTreeRegressor(max_features="sqrt", random_state=0).fit(X, y)
        assert model.score(X, y) > 0.3  # can still learn something

    def test_deterministic_given_seed(self, rng):
        X = rng.standard_normal((80, 5))
        y = rng.standard_normal(80)
        a = DecisionTreeRegressor(max_features=2, random_state=42).fit(X, y)
        b = DecisionTreeRegressor(max_features=2, random_state=42).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))
