"""Bayesian ridge: recovery, shrinkage, predictive uncertainty."""

import numpy as np
import pytest

from repro.ml.bayes import BayesianRidge


@pytest.fixture
def noisy_linear(rng):
    X = rng.standard_normal((300, 4))
    coef = np.array([1.0, -2.0, 0.0, 0.5])
    sigma = 0.1
    y = X @ coef + 1.5 + sigma * rng.standard_normal(300)
    return X, y, coef, sigma


class TestBayesianRidge:
    def test_recovers_coefficients(self, noisy_linear):
        X, y, coef, _ = noisy_linear
        model = BayesianRidge().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=0.05)
        assert model.intercept_ == pytest.approx(1.5, abs=0.05)

    def test_noise_precision_estimated(self, noisy_linear):
        X, y, _, sigma = noisy_linear
        model = BayesianRidge().fit(X, y)
        assert 1.0 / np.sqrt(model.beta_) == pytest.approx(sigma, rel=0.25)

    def test_return_std_shapes_and_floor(self, noisy_linear):
        X, y, _, sigma = noisy_linear
        model = BayesianRidge().fit(X, y)
        mean, std = model.predict(X[:10], return_std=True)
        assert mean.shape == (10,) and std.shape == (10,)
        # Predictive std can never drop below the noise level.
        assert (std >= 1.0 / np.sqrt(model.beta_) - 1e-9).all()

    def test_extrapolation_more_uncertain(self, noisy_linear):
        X, y, _, _ = noisy_linear
        model = BayesianRidge().fit(X, y)
        _, std_in = model.predict(np.zeros((1, 4)), return_std=True)
        _, std_out = model.predict(np.full((1, 4), 10.0), return_std=True)
        assert std_out[0] > std_in[0]

    def test_pure_noise_shrinks_heavily(self, rng):
        X = rng.standard_normal((200, 5))
        y = rng.standard_normal(200)  # no signal at all
        model = BayesianRidge().fit(X, y)
        assert np.abs(model.coef_).max() < 0.2

    def test_deterministic(self, noisy_linear):
        X, y, _, _ = noisy_linear
        a = BayesianRidge().fit(X, y)
        b = BayesianRidge().fit(X, y)
        np.testing.assert_array_equal(a.coef_, b.coef_)
