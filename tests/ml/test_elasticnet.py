"""ElasticNet coordinate descent: sparsity, limits, objective descent."""

import numpy as np
import pytest

from repro.ml.elasticnet import ElasticNet, soft_threshold
from repro.ml.linear import LinearRegression


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        assert soft_threshold(3.0, 1.0) == 2.0
        assert soft_threshold(-3.0, 1.0) == -2.0

    def test_dead_zone(self):
        assert soft_threshold(0.5, 1.0) == 0.0
        assert soft_threshold(-0.5, 1.0) == 0.0


@pytest.fixture
def sparse_data(rng):
    X = rng.standard_normal((300, 10))
    coef = np.zeros(10)
    coef[:3] = [4.0, -3.0, 2.0]
    y = X @ coef + 0.01 * rng.standard_normal(300)
    return X, y, coef


class TestElasticNet:
    def test_lasso_recovers_support(self, sparse_data):
        X, y, coef = sparse_data
        model = ElasticNet(alpha=0.05, l1_ratio=1.0).fit(X, y)
        assert (np.abs(model.coef_[:3]) > 0.5).all()
        assert (np.abs(model.coef_[3:]) < 0.2).all()

    def test_sparsity_increases_with_alpha(self, sparse_data):
        X, y, _ = sparse_data
        weak = ElasticNet(alpha=0.001, l1_ratio=1.0).fit(X, y)
        strong = ElasticNet(alpha=1.0, l1_ratio=1.0).fit(X, y)
        assert strong.sparsity_ >= weak.sparsity_

    def test_tiny_alpha_approaches_ols(self, sparse_data):
        X, y, _ = sparse_data
        enet = ElasticNet(alpha=1e-8, l1_ratio=0.5, max_iter=3000, tol=1e-10).fit(X, y)
        ols = LinearRegression().fit(X, y)
        np.testing.assert_allclose(enet.coef_, ols.coef_, atol=1e-3)

    def test_huge_alpha_zeroes_everything(self, sparse_data):
        X, y, _ = sparse_data
        model = ElasticNet(alpha=1e6, l1_ratio=1.0).fit(X, y)
        np.testing.assert_array_equal(model.coef_, 0.0)
        assert model.intercept_ == pytest.approx(y.mean())

    def test_converges_and_records_iterations(self, sparse_data):
        X, y, _ = sparse_data
        model = ElasticNet(alpha=0.01, max_iter=1000, tol=1e-8).fit(X, y)
        assert 1 <= model.n_iter_ <= 1000

    def test_constant_feature_handled(self, rng):
        X = np.column_stack([np.ones(50), rng.standard_normal(50)])
        y = 2 * X[:, 1]
        model = ElasticNet(alpha=0.001).fit(X, y)
        assert np.isfinite(model.coef_).all()

    @pytest.mark.parametrize("bad_ratio", [-0.1, 1.5])
    def test_l1_ratio_validation(self, bad_ratio):
        with pytest.raises(ValueError):
            ElasticNet(l1_ratio=bad_ratio).fit(np.eye(3), np.ones(3))

    def test_objective_decreases_vs_zero_model(self, sparse_data):
        """The fitted model beats w=0 on the ElasticNet objective."""
        X, y, _ = sparse_data
        alpha, l1r = 0.1, 0.5
        model = ElasticNet(alpha=alpha, l1_ratio=l1r).fit(X, y)

        def objective(w, b):
            resid = y - X @ w - b
            return (0.5 * np.mean(resid ** 2) + alpha * l1r * np.abs(w).sum()
                    + 0.5 * alpha * (1 - l1r) * (w ** 2).sum())

        assert objective(model.coef_, model.intercept_) \
            < objective(np.zeros(X.shape[1]), y.mean())
