"""Estimator API contract: params, cloning, validation."""

import numpy as np
import pytest

from repro.ml.base import BaseEstimator, check_array, check_X_y, clone
from repro.ml.linear import Ridge


class TestCheckArray:
    def test_promotes_1d_to_column(self):
        arr = check_array([1.0, 2.0, 3.0])
        assert arr.shape == (3, 1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((0, 3)))

    def test_casts_to_float64(self):
        assert check_array(np.ones((2, 2), dtype=np.int32)).dtype == np.float64


class TestCheckXY:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="samples"):
            check_X_y(np.zeros((3, 2)), np.zeros(4))

    def test_flattens_column_target(self):
        _, y = check_X_y(np.zeros((3, 2)), np.zeros((3, 1)))
        assert y.shape == (3,)

    def test_rejects_inf_target(self):
        with pytest.raises(ValueError):
            check_X_y(np.zeros((2, 2)), [1.0, np.inf])


class TestParamsAndClone:
    def test_get_params_round_trip(self):
        model = Ridge(alpha=3.0, fit_intercept=False)
        assert model.get_params() == {"alpha": 3.0, "fit_intercept": False}

    def test_set_params_unknown_raises(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            Ridge().set_params(gamma=1.0)

    def test_clone_copies_params_not_state(self):
        model = Ridge(alpha=2.0).fit(np.eye(3), np.arange(3.0))
        fresh = clone(model)
        assert fresh.alpha == 2.0
        assert not hasattr(fresh, "coef_")

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            Ridge().predict(np.eye(2))

    def test_repr_contains_params(self):
        assert "alpha=2.0" in repr(Ridge(alpha=2.0))
