"""Integration of the full preprocessing + model stack on ADSALA data.

These tests exercise the exact composition the installation workflow
builds (YJ -> scale -> LOF -> prune -> model) against the gathered tiny
campaign, catching interface drift between the packages.
"""

import numpy as np
import pytest

from repro.core.features import FeatureBuilder
from repro.ml.metrics import normalised_rmse
from repro.ml.xgb import XGBRegressor
from repro.preprocessing.correlation import CorrelationPruner
from repro.preprocessing.lof import LocalOutlierFactor
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.standard import StandardScaler
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer


@pytest.fixture(scope="module")
def prepared(tiny_dataset):
    fb = FeatureBuilder("both")
    X = fb.build(tiny_dataset.m, tiny_dataset.k, tiny_dataset.n,
                 tiny_dataset.threads)
    y = np.log(tiny_dataset.runtime)
    return X, y


class TestFullPreprocessingStack:
    def test_pipeline_composition_reduces_dims_and_trains(self, prepared):
        X, y = prepared
        yj = YeoJohnsonTransformer()
        Xt = yj.fit_transform(X)
        scaler = StandardScaler()
        Xt = scaler.fit_transform(Xt)
        lof = LocalOutlierFactor(n_neighbors=15, contamination=0.02)
        Xt, yt = lof.filter(Xt, y)
        pruner = CorrelationPruner(threshold=0.8)
        Xt = pruner.fit_transform(Xt)

        assert Xt.shape[1] < X.shape[1]       # pruning fired
        assert Xt.shape[0] < X.shape[0]       # LOF removed rows
        model = XGBRegressor(n_estimators=40, random_state=0).fit(Xt, yt)

        # Inference pipeline replays on unfiltered data.
        pipe = Pipeline.from_fitted([("yj", yj), ("scale", scaler),
                                     ("prune", pruner)])
        score = normalised_rmse(y, model.predict(pipe.transform(X)))
        assert score < 0.4

    def test_lof_removes_injected_outliers(self, prepared):
        X, y = prepared
        scaler = StandardScaler()
        Xs = scaler.fit_transform(YeoJohnsonTransformer().fit_transform(X))
        # Inject gross outlier rows.
        bad = np.full((5, Xs.shape[1]), 15.0)
        X_all = np.vstack([Xs, bad])
        lof = LocalOutlierFactor(n_neighbors=15, contamination=5 / len(X_all))
        lof.fit(X_all)
        # Every injected row is flagged.
        assert (~lof.inlier_mask_[-5:]).all()

    def test_transform_only_pipeline_is_idempotent_to_refit(self, prepared):
        """from_fitted must not silently refit on new data."""
        X, y = prepared
        scaler = StandardScaler().fit(X)
        pipe = Pipeline.from_fitted([("scale", scaler)])
        shifted = X + 1e6
        out = pipe.transform(shifted)
        assert out.mean() > 1e3  # used original stats, not refit

    def test_model_survives_pruned_feature_space(self, prepared):
        X, y = prepared
        pruner = CorrelationPruner(threshold=0.8)
        Xp = pruner.fit_transform(StandardScaler().fit_transform(X))
        model = XGBRegressor(n_estimators=20, random_state=0).fit(Xp, y)
        fresh = pruner.transform(
            StandardScaler().fit(X).transform(X[:10]))
        assert np.isfinite(model.predict(fresh)).all()
