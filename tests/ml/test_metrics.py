"""Metric definitions, including the paper's normalised RMSE."""

import numpy as np
import pytest

from repro.ml.metrics import (mean_absolute_error, mean_squared_error,
                              normalised_rmse, r2_score, rmse)


class TestBasicMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0
        assert mean_absolute_error(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_known_values(self):
        y_true = np.array([0.0, 0.0])
        y_pred = np.array([3.0, 4.0])
        assert mean_squared_error(y_true, y_pred) == pytest.approx(12.5)
        assert rmse(y_true, y_pred) == pytest.approx(np.sqrt(12.5))
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(3.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rmse([], [])


class TestR2:
    def test_mean_predictor_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full_like(y, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y[::-1]) < 0.0

    def test_constant_target(self):
        y = np.ones(5)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0


class TestNormalisedRmse:
    def test_mean_predictor_scores_one(self):
        """The Tables III/IV anchor: a no-skill model sits at ~1.0."""
        rng = np.random.default_rng(0)
        y = rng.standard_normal(1000)
        pred = np.full_like(y, y.mean())
        assert normalised_rmse(y, pred) == pytest.approx(1.0, rel=1e-6)

    def test_relates_to_r2(self):
        """nrmse^2 == 1 - R^2 (both normalise by target variance)."""
        rng = np.random.default_rng(1)
        y = rng.standard_normal(500)
        pred = y + 0.3 * rng.standard_normal(500)
        assert normalised_rmse(y, pred) ** 2 == pytest.approx(
            1 - r2_score(y, pred), rel=1e-9)

    def test_scale_invariant(self):
        rng = np.random.default_rng(2)
        y = rng.standard_normal(100)
        pred = y + 0.1 * rng.standard_normal(100)
        assert normalised_rmse(y, pred) == pytest.approx(
            normalised_rmse(1000 * y, 1000 * pred))

    def test_constant_target_edge_case(self):
        y = np.ones(4)
        assert normalised_rmse(y, y) == 0.0
        assert normalised_rmse(y, y + 1) == np.inf
