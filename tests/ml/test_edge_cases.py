"""Cross-model edge cases: tiny data, duplicates, extreme scales."""

import numpy as np
import pytest

from repro.ml import (AdaBoostRegressor, BayesianRidge, DecisionTreeRegressor,
                      ElasticNet, KNeighborsRegressor, LGBMRegressor,
                      LinearRegression, RandomForestRegressor, XGBRegressor)

SMALL_MODELS = [
    lambda: LinearRegression(),
    lambda: ElasticNet(alpha=0.01),
    lambda: BayesianRidge(),
    lambda: DecisionTreeRegressor(max_depth=3),
    lambda: RandomForestRegressor(n_estimators=3, random_state=0),
    lambda: AdaBoostRegressor(n_estimators=3, random_state=0),
    lambda: XGBRegressor(n_estimators=5, random_state=0),
    lambda: LGBMRegressor(n_estimators=5, random_state=0),
    lambda: KNeighborsRegressor(n_neighbors=2),
]


@pytest.mark.parametrize("factory", SMALL_MODELS)
class TestTinyData:
    def test_two_samples(self, factory):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, 3.0])
        model = factory().fit(X, y)
        pred = model.predict(X)
        assert np.isfinite(pred).all()
        # Predictions stay within a sane envelope of the targets.
        assert pred.min() >= y.min() - 2 * (y.max() - y.min())
        assert pred.max() <= y.max() + 2 * (y.max() - y.min())

    def test_duplicate_rows(self, factory):
        X = np.ones((20, 3))
        y = np.full(20, 5.0)
        model = factory().fit(X, y)
        np.testing.assert_allclose(model.predict(X[:3]), 5.0, atol=1e-6)

    def test_extreme_feature_scales(self, factory):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((50, 2)) * np.array([1e-8, 1e8])
        y = rng.standard_normal(50)
        pred = factory().fit(X, y).predict(X[:5])
        assert np.isfinite(pred).all()


class TestSingleFeature:
    def test_tree_models_on_single_column(self, rng):
        X = rng.standard_normal((100, 1))
        y = np.sign(X[:, 0])
        for factory in (lambda: DecisionTreeRegressor(max_depth=2),
                        lambda: XGBRegressor(n_estimators=10, random_state=0)):
            model = factory().fit(X, y)
            score = model.score(X, y)
            assert score > 0.8


class TestTargetScales:
    @pytest.mark.parametrize("scale", [1e-9, 1.0, 1e9])
    def test_xgb_handles_target_magnitudes(self, rng, scale):
        """GEMM runtimes span microseconds to seconds; the boosting
        stack must not lose precision at either end."""
        X = rng.standard_normal((200, 3))
        y = (X[:, 0] + 0.1 * rng.standard_normal(200)) * scale
        model = XGBRegressor(n_estimators=40, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.7
