"""kNN and linear SVR candidates."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsRegressor
from repro.ml.svr import LinearSVR


class TestKNN:
    def test_one_neighbor_memorises(self, rng):
        X = rng.standard_normal((50, 3))
        y = rng.standard_normal(50)
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-9)

    def test_uniform_average(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        # Query at 0.4: neighbours are 0.0 and 1.0.
        assert model.predict([[0.4]])[0] == pytest.approx(1.0)

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        uni = KNeighborsRegressor(n_neighbors=2, weights="uniform").fit(X, y)
        dist = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        q = [[0.1]]
        assert dist.predict(q)[0] < uni.predict(q)[0]

    def test_exact_match_dominates_distance_weights(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([5.0, 7.0, 9.0])
        model = KNeighborsRegressor(n_neighbors=3, weights="distance").fit(X, y)
        assert model.predict([[1.0]])[0] == pytest.approx(7.0)

    def test_chunking_consistent(self, rng):
        X = rng.standard_normal((300, 4))
        y = rng.standard_normal(300)
        q = rng.standard_normal((100, 4))
        a = KNeighborsRegressor(n_neighbors=5, chunk_size=7).fit(X, y).predict(q)
        b = KNeighborsRegressor(n_neighbors=5, chunk_size=1000).fit(X, y).predict(q)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_k_larger_than_train_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=10).fit(np.eye(3), np.ones(3))

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="gaussian").fit(np.eye(3), np.ones(3))


class TestLinearSVR:
    def test_fits_clean_linear_data(self, rng):
        X = rng.standard_normal((400, 3))
        coef = np.array([2.0, -1.0, 0.5])
        y = X @ coef + 1.0
        model = LinearSVR(C=10.0, epsilon=0.01, n_epochs=40,
                          random_state=0).fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=0.3)

    def test_epsilon_tube_tolerates_small_noise(self, rng):
        X = rng.standard_normal((200, 2))
        y = X @ np.array([1.0, 1.0])
        wide = LinearSVR(epsilon=10.0, n_epochs=20, random_state=0).fit(X, y)
        # Everything inside the tube: no incentive to move off zero much.
        assert np.linalg.norm(wide.coef_) < np.linalg.norm(
            LinearSVR(epsilon=0.01, n_epochs=20, random_state=0).fit(X, y).coef_)

    def test_deterministic_given_seed(self, rng):
        X = rng.standard_normal((100, 2))
        y = rng.standard_normal(100)
        a = LinearSVR(random_state=3).fit(X, y).coef_
        b = LinearSVR(random_state=3).fit(X, y).coef_
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSVR(C=0.0).fit(np.eye(3), np.ones(3))
        with pytest.raises(ValueError):
            LinearSVR(epsilon=-1.0).fit(np.eye(3), np.ones(3))
