"""Grid and randomised hyper-parameter search."""

import numpy as np
import pytest

from repro.ml.linear import Ridge
from repro.ml.model_selection import KFold
from repro.ml.tuning import GridSearchCV, ParameterGrid, RandomizedSearchCV


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {"a": 1, "b": "z"} in combos

    def test_rejects_scalar_values(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": 5})

    def test_rejects_non_dict(self):
        with pytest.raises(TypeError):
            ParameterGrid([("a", [1])])


@pytest.fixture
def ridge_problem(rng):
    X = rng.standard_normal((120, 5))
    y = X @ np.array([1.0, -1.0, 0.5, 0.0, 2.0]) + 0.01 * rng.standard_normal(120)
    return X, y


class TestGridSearchCV:
    def test_finds_low_alpha_for_clean_data(self, ridge_problem):
        X, y = ridge_problem
        search = GridSearchCV(Ridge(), {"alpha": [1e-4, 1.0, 1e4]},
                              cv=KFold(3, random_state=0))
        search.fit(X, y)
        assert search.best_params_["alpha"] == 1e-4

    def test_refits_best_estimator(self, ridge_problem):
        X, y = ridge_problem
        search = GridSearchCV(Ridge(), {"alpha": [0.001, 0.1]},
                              cv=KFold(3, random_state=0)).fit(X, y)
        assert hasattr(search.best_estimator_, "coef_")
        assert np.isfinite(search.predict(X)).all()

    def test_cv_results_sorted_best_first(self, ridge_problem):
        X, y = ridge_problem
        search = GridSearchCV(Ridge(), {"alpha": [1e-4, 1e2, 1e6]},
                              cv=KFold(3, random_state=0)).fit(X, y)
        means = [r["mean_score"] for r in search.cv_results_]
        assert means == sorted(means, reverse=True)

    def test_empty_grid_raises(self, ridge_problem):
        X, y = ridge_problem
        with pytest.raises(ValueError):
            GridSearchCV(Ridge(), {"alpha": []}).fit(X, y)


class TestRandomizedSearchCV:
    def test_respects_n_iter(self, ridge_problem):
        X, y = ridge_problem
        search = RandomizedSearchCV(
            Ridge(), {"alpha": [0.001, 0.01, 0.1, 1.0, 10.0, 100.0]},
            n_iter=3, cv=KFold(3, random_state=0), random_state=0).fit(X, y)
        assert len(search.cv_results_) == 3

    def test_covers_whole_space_when_n_iter_large(self, ridge_problem):
        X, y = ridge_problem
        search = RandomizedSearchCV(Ridge(), {"alpha": [0.01, 1.0]},
                                    n_iter=100, cv=KFold(3, random_state=0),
                                    random_state=0).fit(X, y)
        assert len(search.cv_results_) == 2

    def test_reproducible(self, ridge_problem):
        X, y = ridge_problem
        space = {"alpha": [10.0 ** e for e in range(-4, 5)]}
        a = RandomizedSearchCV(Ridge(), space, n_iter=4,
                               cv=KFold(3, random_state=0), random_state=5).fit(X, y)
        b = RandomizedSearchCV(Ridge(), space, n_iter=4,
                               cv=KFold(3, random_state=0), random_state=5).fit(X, y)
        assert a.best_params_ == b.best_params_
