"""Splitting, stratification, K-fold CV."""

import numpy as np
import pytest

from repro.ml.linear import Ridge
from repro.ml.model_selection import (KFold, cross_val_score, stratify_bins,
                                      train_test_split)


class TestStratifyBins:
    def test_balanced_bins(self, rng):
        y = rng.standard_normal(1000)
        bins = stratify_bins(y, n_bins=10)
        counts = np.bincount(bins)
        assert counts.min() > 80  # near-equal quantile bins

    def test_monotone_with_target(self, rng):
        y = np.sort(rng.standard_normal(100))
        bins = stratify_bins(y, n_bins=4)
        assert (np.diff(bins) >= 0).all()

    def test_small_samples_fewer_bins(self):
        assert stratify_bins(np.arange(4.0), n_bins=10).max() <= 2

    def test_rejects_single_bin(self):
        with pytest.raises(ValueError):
            stratify_bins(np.arange(10.0), n_bins=1)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.standard_normal((100, 3))
        y = rng.standard_normal(100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=0)
        assert len(Xte) == 30 and len(Xtr) == 70
        assert len(ytr) == 70 and len(yte) == 30

    def test_no_overlap_full_coverage(self, rng):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        Xtr, Xte, *_ = train_test_split(X, y, test_size=0.2, random_state=1)
        combined = np.sort(np.concatenate([Xtr.ravel(), Xte.ravel()]))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_stratified_preserves_distribution(self, rng):
        y = np.concatenate([np.zeros(80), np.ones(20) * 100])
        X = y.reshape(-1, 1)
        _, _, _, yte = train_test_split(X, y, test_size=0.25,
                                        stratify=(y > 50).astype(int),
                                        random_state=0)
        # 25% of each stratum: 20 zeros and 5 hundreds.
        assert (yte > 50).sum() == 5
        assert (yte < 50).sum() == 20

    def test_reproducible(self, rng):
        X = rng.standard_normal((40, 2))
        y = rng.standard_normal(40)
        a = train_test_split(X, y, random_state=7)
        b = train_test_split(X, y, random_state=7)
        np.testing.assert_array_equal(a[0], b[0])

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.eye(4), np.ones(4), test_size=1.5)


class TestKFold:
    def test_folds_partition_everything(self, rng):
        X = rng.standard_normal((50, 2))
        seen = []
        for train, val in KFold(n_splits=5, random_state=0).split(X):
            assert len(np.intersect1d(train, val)) == 0
            seen.extend(val.tolist())
        assert sorted(seen) == list(range(50))

    def test_stratified_folds_balanced(self, rng):
        labels = np.repeat([0, 1], 30)
        X = rng.standard_normal((60, 2))
        for _, val in KFold(n_splits=3, random_state=0).split(X, stratify_on=labels):
            frac_ones = labels[val].mean()
            assert 0.3 < frac_ones < 0.7

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(np.zeros((5, 1))))

    def test_rejects_one_split(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestCrossValScore:
    def test_returns_per_fold_scores(self, rng):
        X = rng.standard_normal((60, 3))
        y = X @ np.array([1.0, 2.0, 3.0])
        scores = cross_val_score(Ridge(alpha=0.01), X, y,
                                 cv=KFold(3, random_state=0))
        assert scores.shape == (3,)
        assert (scores > 0.99).all()

    def test_custom_scoring(self, rng):
        from repro.ml.metrics import rmse

        X = rng.standard_normal((60, 2))
        y = rng.standard_normal(60)
        scores = cross_val_score(Ridge(), X, y, cv=KFold(3, random_state=0),
                                 scoring=rmse)
        assert (scores >= 0).all()

    def test_estimator_not_mutated(self, rng):
        X = rng.standard_normal((30, 2))
        y = rng.standard_normal(30)
        model = Ridge()
        cross_val_score(model, X, y, cv=KFold(3, random_state=0))
        assert not hasattr(model, "coef_")  # clones were fitted, not it
