"""Fused-transform folding: bitwise identity, fallbacks, validation."""

import numpy as np
import pytest

from repro.compile import lower_pipeline
from repro.ml.base import BaseEstimator
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.standard import StandardScaler
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer

from tests.compile.conftest import fit_stages


@pytest.fixture(scope="module")
def raw_data():
    rng = np.random.default_rng(3)
    # Mixed signs and scales so Yeo-Johnson exercises all four branches.
    X = np.column_stack([
        rng.standard_normal(400) * 3.0,
        rng.exponential(5.0, 400),
        -rng.exponential(2.0, 400),
        rng.integers(1, 5000, 400).astype(float),
        rng.standard_normal(400),
    ])
    # A correlated copy so the pruner genuinely drops a column.
    return np.column_stack([X, X[:, 3] * 2.0 + 1e-9 * rng.standard_normal(400)])


class TestBitwiseIdentity:
    def test_full_pipeline_is_bitwise_identical(self, raw_data):
        pipeline, _ = fit_stages(raw_data)
        fused = lower_pipeline(pipeline)
        query = raw_data[::3] * 1.7 - 0.3
        np.testing.assert_array_equal(pipeline.transform(query),
                                      fused.apply(query))

    def test_pruner_drops_at_least_one_column(self, raw_data):
        pipeline, _ = fit_stages(raw_data)
        fused = lower_pipeline(pipeline)
        assert fused.n_features_out < fused.n_features_in

    def test_no_yeo_johnson_ablation(self, raw_data):
        pipeline, _ = fit_stages(raw_data, use_yeo_johnson=False)
        fused = lower_pipeline(pipeline)
        assert fused.lambdas is None
        query = raw_data[::2]
        np.testing.assert_array_equal(pipeline.transform(query),
                                      fused.apply(query))

    def test_yj_standardize_variant(self, raw_data):
        yj = YeoJohnsonTransformer(standardize=True)
        yj.fit(raw_data)
        pipeline = Pipeline.from_fitted([("yeo_johnson", yj)])
        fused = lower_pipeline(pipeline)
        assert len(fused.affines) == 1
        np.testing.assert_array_equal(pipeline.transform(raw_data),
                                      fused.apply(raw_data))

    def test_pruner_then_scaler_keeps_layout_parity(self, raw_data):
        """A gather followed by an affine still yields F-ordered object
        output (ufuncs preserve their input's layout), and the fused
        path must match it for downstream matmul bitwise parity."""
        from repro.preprocessing.correlation import CorrelationPruner

        pruner = CorrelationPruner().fit(raw_data)
        scaler = StandardScaler().fit(pruner.transform(raw_data))
        pipeline = Pipeline.from_fitted([("corr_prune", pruner),
                                         ("scaler", scaler)])
        fused = lower_pipeline(pipeline)
        obj = pipeline.transform(raw_data)
        out = fused.apply(raw_data)
        np.testing.assert_array_equal(obj, out)
        assert out.flags["F_CONTIGUOUS"] == obj.flags["F_CONTIGUOUS"]
        coef = np.random.default_rng(1).standard_normal(out.shape[1])
        np.testing.assert_array_equal(obj @ coef, out @ coef)

    def test_matches_gather_memory_layout(self, raw_data):
        """BLAS matmul is layout-sensitive: the fused output must share
        the object path's memory order or downstream ``X @ coef`` flips
        low bits."""
        pipeline, _ = fit_stages(raw_data)
        fused = lower_pipeline(pipeline)
        obj = pipeline.transform(raw_data)
        out = fused.apply(raw_data)
        assert out.flags["F_CONTIGUOUS"] == obj.flags["F_CONTIGUOUS"]
        coef = np.random.default_rng(0).standard_normal(out.shape[1])
        np.testing.assert_array_equal(obj @ coef, out @ coef)


class TestFallbacks:
    def test_unknown_stage_is_not_folded(self, raw_data):
        class Exotic(BaseEstimator):
            def fit(self, X, y=None):
                self.n_features_ = X.shape[1]
                return self

            def transform(self, X):
                return np.tanh(X)

        pipeline, _ = fit_stages(raw_data)
        steps = pipeline.steps + [("exotic", Exotic().fit(raw_data))]
        assert lower_pipeline(Pipeline.from_fitted(steps)) is None

    def test_none_pipeline_is_not_folded(self):
        assert lower_pipeline(None) is None

    def test_affine_before_yeo_johnson_is_not_folded(self, raw_data):
        scaler = StandardScaler().fit(raw_data)
        yj = YeoJohnsonTransformer().fit(scaler.transform(raw_data))
        pipeline = Pipeline.from_fitted([("scaler", scaler),
                                         ("yeo_johnson", yj)])
        assert lower_pipeline(pipeline) is None


class TestValidation:
    def test_feature_count_mismatch_raises(self, raw_data):
        pipeline, _ = fit_stages(raw_data)
        fused = lower_pipeline(pipeline)
        with pytest.raises(ValueError, match="features"):
            fused.apply(raw_data[:, :3])

    def test_nan_rejected_at_entry(self, raw_data):
        pipeline, _ = fit_stages(raw_data)
        fused = lower_pipeline(pipeline)
        bad = raw_data.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            fused.apply(bad)
        with pytest.raises(ValueError, match="NaN"):
            pipeline.transform(bad)  # object path validates once at entry

    def test_pipeline_validates_once_not_per_stage(self, raw_data,
                                                   monkeypatch):
        """The inference pipeline coerces/validates at entry only."""
        import repro.ml.base as base
        import repro.preprocessing.pipeline as pipe_mod

        pipeline, _ = fit_stages(raw_data)
        calls = []
        real = base.check_array

        def counting(X, *args, **kwargs):
            calls.append(1)
            return real(X, *args, **kwargs)

        monkeypatch.setattr(pipe_mod, "check_array", counting)
        for mod in ("yeo_johnson", "standard", "correlation"):
            module = __import__(f"repro.preprocessing.{mod}",
                                fromlist=["check_array"])
            monkeypatch.setattr(module, "check_array", counting)
        pipeline.transform(raw_data)
        assert len(calls) == 1

    def test_describe_reports_sizes(self, raw_data):
        pipeline, _ = fit_stages(raw_data)
        info = lower_pipeline(pipeline).describe()
        assert info["n_features_in"] == raw_data.shape[1]
        assert info["yeo_johnson"] and info["n_affine_stages"] == 1
        assert info["nbytes"] > 0
