"""Compiled plans as bundle artefacts: save/load, legacy, registry, engine."""

import json
import os
import pickle

import numpy as np
import pytest

from repro.core.serialize import (MANIFEST_FILENAME, PLAN_FILENAME,
                                  SCHEMA_VERSION, _sha256_file,
                                  bundle_checksum, load_bundle, save_bundle)
from repro.engine.service import GemmService
from repro.train.registry import ModelRegistry


@pytest.fixture
def saved(tiny_bundle, tmp_path):
    bundle, sim = tiny_bundle
    directory = tmp_path / "install"
    manifest = save_bundle(bundle, directory)
    return bundle, sim, directory, manifest


class UnlowerableModel:
    """Pickles fine, lowers to nothing (module-level for pickle)."""

    def predict(self, X):  # pragma: no cover - never called
        return X[:, 0]


def make_legacy(directory):
    """Rewrite a saved bundle as a pre-plan schema-1 directory."""
    os.remove(directory / PLAN_FILENAME)
    manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
    manifest["schema_version"] = 1
    del manifest["files"][PLAN_FILENAME]
    del manifest["plan"]
    manifest["checksum"] = bundle_checksum(directory)
    (directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))


class TestSaveLoad:
    def test_plan_artifact_written_and_described(self, saved):
        _, _, directory, manifest = saved
        assert (directory / PLAN_FILENAME).exists()
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert PLAN_FILENAME in manifest["files"]
        assert manifest["plan"]["fully_lowered"]
        assert manifest["checksum"] == bundle_checksum(directory)

    def test_loaded_plan_predicts_bitwise_identically(self, saved):
        bundle, _, directory, _ = saved
        loaded = load_bundle(directory)
        assert loaded.plan is not None
        obj = bundle.predictor(cache_size=16, compiled=False)
        comp = loaded.predictor(cache_size=16)  # default: use loaded plan
        assert comp.compiled
        shapes = [(64, 512, 64), (100, 100, 100), (1, 1, 1), (999, 31, 207)]
        np.testing.assert_array_equal(obj.predicted_runtimes_batch(shapes),
                                      comp.predicted_runtimes_batch(shapes))
        np.testing.assert_array_equal(obj.predict_threads_batch(shapes),
                                      comp.predict_threads_batch(shapes))

    def test_corrupt_plan_fails_loudly(self, saved, tiny_bundle):
        from repro.core.serialize import BundleIntegrityError

        _, _, directory, _ = saved
        (directory / PLAN_FILENAME).write_bytes(b"\x80\x04 garbage")
        manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
        manifest["files"][PLAN_FILENAME] = _sha256_file(
            os.path.join(directory, PLAN_FILENAME))
        manifest["checksum"] = bundle_checksum(directory)
        (directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(BundleIntegrityError, match="plan"):
            load_bundle(directory)

    def test_unmanifested_plan_is_refused(self, saved):
        """A plan file the manifest does not cover would be an
        unverified pickle — load must refuse it, not execute it."""
        from repro.core.serialize import BundleIntegrityError

        _, _, directory, _ = saved
        rogue = (directory / PLAN_FILENAME).read_bytes()
        make_legacy(directory)  # schema-1 manifest, no plan entry
        (directory / PLAN_FILENAME).write_bytes(rogue)
        with pytest.raises(BundleIntegrityError, match="not recorded"):
            load_bundle(directory)
        # The recovery path still works: skip the rogue file entirely.
        assert load_bundle(directory, load_plan=False).plan is None

    def test_plan_pickle_is_deterministic(self, saved, tmp_path):
        bundle, _, directory, _ = saved
        save_bundle(bundle, tmp_path / "again")
        assert (directory / PLAN_FILENAME).read_bytes() \
            == (tmp_path / "again" / PLAN_FILENAME).read_bytes()
        assert bundle_checksum(directory) \
            == bundle_checksum(tmp_path / "again")


class TestLegacyBundles:
    def test_schema1_bundle_loads_without_plan(self, saved):
        _, _, directory, _ = saved
        make_legacy(directory)
        loaded = load_bundle(directory)
        assert loaded.plan is None
        assert not loaded.predictor().compiled

    def test_legacy_bundle_compiles_lazily_in_service(self, saved):
        bundle, sim, directory, _ = saved
        make_legacy(directory)
        loaded = load_bundle(directory)
        service = GemmService.from_bundle(loaded, sim)
        assert service.predictor.compiled  # compiled on first serve
        reference = GemmService(bundle.predictor(cache_size=256,
                                                 compiled=False),
                                backend=sim)
        specs = [(64, 512, 64), (128, 128, 128), (64, 512, 64)]
        np.testing.assert_array_equal(service.predict_batch(specs),
                                      reference.predict_batch(specs))


class TestRegistryPlans:
    def test_publish_carries_plan(self, tiny_bundle, tmp_path):
        bundle, _ = tiny_bundle
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish(bundle, routine="gemm")
        assert registry.has_plan(record)
        assert registry.inspect("gemm", "tiny")["has_plan"]
        assert registry.load("gemm", "tiny").plan is not None

    def test_compile_plan_retrofits_legacy_bundle(self, tiny_bundle,
                                                  tmp_path):
        bundle, _ = tiny_bundle
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish(bundle, routine="gemm")
        # Strip the plan (simulating a pre-plan publication)...
        import pathlib

        make_legacy(pathlib.Path(record.path))
        registry._write_ref("gemm", "tiny", {
            "latest": 1,
            "versions": {"1": {"checksum": bundle_checksum(record.path),
                               "model_name": record.model_name}}})
        assert registry.load("gemm", "tiny").plan is None
        # ...then retrofit: published as a new immutable version (the v1
        # directory is never touched; concurrent readers stay safe).
        info = registry.compile_plan("gemm", "tiny")
        assert info["plan"]["fully_lowered"]
        assert (info["version"], info["compiled_from_version"]) == (2, 1)
        assert registry.has_plan(registry.resolve("gemm", "tiny"))
        assert not registry.has_plan(registry.resolve("gemm", "tiny",
                                                      version=1))
        loaded = registry.load("gemm", "tiny")  # latest: checksum verifies
        assert loaded.plan is not None

    def test_recompile_is_idempotent(self, tiny_bundle, tmp_path):
        """A bundle already carrying a byte-identical plan is reported
        up-to-date — no duplicate version is minted."""
        bundle, _ = tiny_bundle
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(bundle, routine="gemm")
        info = registry.compile_plan("gemm", "tiny")
        assert info["up_to_date"] and info["version"] == 1
        assert info["plan"]["fully_lowered"]
        assert len(registry.entries()) == 1
        assert registry.load("gemm", "tiny").plan is not None

    def test_compile_plan_recovers_corrupt_plan(self, tiny_bundle,
                                                tmp_path):
        """models --compile is the recovery path: it must work even when
        the existing plan artefact is unreadable or missing."""
        bundle, _ = tiny_bundle
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish(bundle, routine="gemm")
        plan_path = os.path.join(record.path, PLAN_FILENAME)
        with open(plan_path, "wb") as fh:
            fh.write(b"\x80\x04 garbage")
        info = registry.compile_plan("gemm", "tiny")
        assert info["plan"]["fully_lowered"] and info["version"] == 2
        assert registry.load("gemm", "tiny").plan is not None
        # Deleted plan (manifest now stale): also recoverable.
        os.remove(os.path.join(registry.resolve("gemm", "tiny").path,
                               PLAN_FILENAME))
        info = registry.compile_plan("gemm", "tiny")
        assert info["version"] == 3
        assert registry.load("gemm", "tiny").plan is not None

    def test_nothing_lowerable_publishes_nothing(self, tiny_bundle,
                                                 tmp_path):
        """A bundle whose model AND pipeline keep the object path gets
        no plan artefact, and compiling it publishes no new version."""
        import dataclasses

        bundle, _ = tiny_bundle
        stubborn = dataclasses.replace(bundle, pipeline=None,
                                       model=UnlowerableModel(), plan=None)
        directory = tmp_path / "stubborn"
        manifest = save_bundle(stubborn, directory)
        assert not (directory / PLAN_FILENAME).exists()
        assert PLAN_FILENAME not in manifest["files"]

        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(stubborn, routine="gemm")
        info = registry.compile_plan("gemm", "tiny")
        assert info["plan"] is None and info["version"] == 1
        assert len(registry.entries()) == 1  # no useless version churn


class TestEngineIntegration:
    def test_service_uses_compiled_path_and_matches_object(self, tiny_bundle):
        bundle, sim = tiny_bundle
        compiled = GemmService.from_bundle(bundle, sim)
        assert compiled.predictor.compiled
        reference = GemmService(bundle.predictor(cache_size=256,
                                                 compiled=False),
                                backend=sim)
        shapes = [(64, 512, 64), (333, 17, 1021), (128, 128, 128)] * 2
        np.testing.assert_array_equal(compiled.predict_batch(shapes),
                                      reference.predict_batch(shapes))

    def test_reload_keeps_compiled_path(self, tiny_bundle):
        bundle, sim = tiny_bundle
        service = GemmService.from_bundle(bundle, sim)
        before = service.predict((64, 512, 64))
        service.reload(bundle)
        assert service.predictor.compiled
        assert service.predict((64, 512, 64)) == before
