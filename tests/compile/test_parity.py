"""Predictor-level compiled-vs-object parity over every candidate model.

The acceptance property of the compiled-plan layer: for **every**
registered model, over random shape batches, the compiled predictor's
scores are bitwise equal to the object path's and therefore every thread
choice is identical — including degenerate batches and cache-warm
replays.
"""

import numpy as np
import pytest

from repro.core.predictor import ThreadPredictor
from repro.ml.registry import candidate_models

from tests.compile.conftest import GRID, random_query_shapes

ALL_CANDIDATES = candidate_models(budget="fast", include_extra=True,
                                  random_state=0)


@pytest.fixture(scope="module")
def predictor_pairs(feature_setup, fitted_pipeline):
    """(object, compiled) ThreadPredictor per candidate model."""
    builder, _, _ = feature_setup
    pipeline, Z, y = fitted_pipeline
    pairs = {}
    for cand in ALL_CANDIDATES:
        model = cand.build().fit(Z, y)
        obj = ThreadPredictor(builder, pipeline, model, GRID, cache_size=64)
        comp = ThreadPredictor(builder, pipeline, model, GRID,
                               cache_size=64).compile()
        pairs[cand.name] = (obj, comp)
    return pairs


@pytest.mark.parametrize("name", [c.name for c in ALL_CANDIDATES])
class TestEveryModel:
    def test_scores_bitwise_equal_over_random_batches(self, predictor_pairs,
                                                      name):
        obj, comp = predictor_pairs[name]
        for seed in range(3):
            shapes = random_query_shapes(17, seed=seed)
            np.testing.assert_array_equal(
                obj.predicted_runtimes_batch(shapes),
                comp.predicted_runtimes_batch(shapes))

    def test_thread_choices_identical(self, predictor_pairs, name):
        obj, comp = predictor_pairs[name]
        shapes = random_query_shapes(25, seed=99)
        np.testing.assert_array_equal(obj.predict_threads_batch(shapes),
                                      comp.predict_threads_batch(shapes))
        for m, k, n in random_query_shapes(8, seed=100):
            assert obj.predict_threads(m, k, n) \
                == comp.predict_threads(m, k, n)

    def test_single_shape_batch(self, predictor_pairs, name):
        obj, comp = predictor_pairs[name]
        shape = random_query_shapes(1, seed=5)
        np.testing.assert_array_equal(obj.predict_threads_batch(shape),
                                      comp.predict_threads_batch(shape))

    def test_empty_batch(self, predictor_pairs, name):
        _, comp = predictor_pairs[name]
        out = comp.predict_threads_batch([])
        assert out.dtype == np.int64 and out.size == 0

    def test_cache_warm_replay(self, predictor_pairs, name):
        _, comp = predictor_pairs[name]
        comp.invalidate_memo()
        shapes = random_query_shapes(9, seed=42)
        first = comp.predict_threads_batch(shapes)
        passes_before = comp.n_model_passes
        replay = comp.predict_threads_batch(shapes)
        np.testing.assert_array_equal(first, replay)
        assert comp.n_model_passes == passes_before  # all from cache


class TestCompiledFlag:
    def test_compile_sets_plan(self, predictor_pairs):
        obj, comp = predictor_pairs["XGBoost"]
        assert not obj.compiled and comp.compiled

    def test_scalar_and_batch_agree_compiled(self, predictor_pairs):
        _, comp = predictor_pairs["Random Forest"]
        comp.invalidate_memo()
        shapes = random_query_shapes(6, seed=11)
        batch = comp.predict_threads_batch(shapes)
        comp.invalidate_memo()
        scalar = [comp.predict_threads(*s) for s in shapes]
        np.testing.assert_array_equal(batch, scalar)
