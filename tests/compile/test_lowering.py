"""Model lowering: bitwise-equal predictions for every candidate."""

import numpy as np
import pytest

from repro.compile import PackedTrees, compile_plan, lower_model
from repro.ml.knn import KNeighborsRegressor
from repro.ml.registry import candidate_models

ALL_CANDIDATES = candidate_models(budget="fast", include_extra=True,
                                  random_state=0)


@pytest.fixture(scope="module")
def fitted_models(fitted_pipeline):
    _, Z, y = fitted_pipeline
    return {cand.name: cand.build().fit(Z, y) for cand in ALL_CANDIDATES}


@pytest.mark.parametrize("name", [c.name for c in ALL_CANDIDATES])
def test_lowered_predictions_bitwise_equal(fitted_models, fitted_pipeline,
                                           name):
    _, Z, _ = fitted_pipeline
    model = fitted_models[name]
    lowered = lower_model(model)
    if isinstance(model, KNeighborsRegressor):
        assert lowered is None  # brute-force kNN keeps the object path
        return
    query = Z[::3]
    np.testing.assert_array_equal(model.predict(query),
                                  lowered.predict(query))


@pytest.mark.parametrize("name", ["Random Forest", "XGBoost", "LightGBM",
                                  "AdaBoost"])
def test_packed_per_tree_matches_each_tree(fitted_models, fitted_pipeline,
                                           name):
    _, Z, _ = fitted_pipeline
    model = fitted_models[name]
    packed = PackedTrees.from_hist_trees(model.trees_)
    per_tree = packed.predict_per_tree(Z[:40])
    assert per_tree.shape == (len(model.trees_), 40)
    for t, tree in enumerate(model.trees_):
        np.testing.assert_array_equal(tree.predict(Z[:40]), per_tree[t])


def test_packed_cart_matches_node_walk(fitted_models, fitted_pipeline):
    _, Z, _ = fitted_pipeline
    model = fitted_models["Decision Tree"]
    packed = PackedTrees.from_cart(model.root_, model.depth_)
    np.testing.assert_array_equal(model.predict(Z),
                                  packed.predict_per_tree(Z)[0])


def test_packed_sizes_accounted(fitted_models):
    model = fitted_models["Random Forest"]
    packed = PackedTrees.from_hist_trees(model.trees_)
    assert packed.n_nodes == sum(t.n_nodes for t in model.trees_)
    assert packed.n_trees == len(model.trees_)
    assert packed.nbytes > 0
    info = packed.describe()
    assert info["n_nodes"] == packed.n_nodes


def test_plan_records_fallbacks(fitted_models, fitted_pipeline):
    pipeline, _, _ = fitted_pipeline
    knn = fitted_models["KNN Regressor"]
    plan = compile_plan(pipeline, knn)
    assert plan.transform is not None
    assert plan.model is None
    assert plan.lowers_anything and not plan.fully_lowered
    assert plan.describe()["model"] == "object-fallback"


def test_plan_for_pipelineless_bundle(fitted_models):
    plan = compile_plan(None, fitted_models["Linear Regression"])
    assert plan.transform is None and not plan.transform_fallback
    assert plan.describe()["pipeline"] == "identity"
    assert plan.fully_lowered
