"""Plateau interpolation, lattice refinement and the fallback reservoir.

The PR-8 tier-0 invariants: an interpolated table answer is only ever
one the compiled plan itself would have given (corner-agreeing,
probe-validated cells); disagreeing or demoted cells fall through to
the plan unchanged; refinement densifies the lattice deterministically
from recorded fallback shapes and republishes through the registry
without breaking version idempotence.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.compile import DecisionTable, compile_table
from repro.compile.table import (MAX_LATTICE_POINTS, _corner_agreement,
                                 refine_axes)
from repro.core.predictor import ShapeReservoir, ThreadPredictor
from repro.core.routines import REGISTRY
from repro.train.registry import ModelRegistry, RegistryError

from tests.compile.conftest import GRID
from tests.compile.test_table import (ALL_CANDIDATES, AXES, lattice_shapes,
                                      off_lattice_shapes)

#: Bounding box of AXES, for drawing in-box interior probes.
BOX = [(int(axis[0]), int(axis[-1])) for axis in
       (np.asarray(a) for a in AXES)]


def interior_probes(n: int, seed: int) -> np.ndarray:
    """Random in-box (m, k, n) triples, most of them off-lattice."""
    rng = np.random.default_rng(seed)
    return np.column_stack([
        rng.integers(lo, hi + 1, size=n, dtype=np.int64)
        for lo, hi in BOX])


def plan_choices(predictor, dims) -> np.ndarray:
    """The compiled plan's argmin choices, bypassing every cache tier."""
    scores = predictor.predicted_runtimes_batch(
        [tuple(int(v) for v in d) for d in dims])
    return predictor.thread_grid[np.argmin(scores, axis=1)]


@pytest.fixture(scope="module")
def plateau_pairs(feature_setup, fitted_pipeline):
    """(compiled predictor, plateau table) per candidate model."""
    builder, _, _ = feature_setup
    pipeline, Z, y = fitted_pipeline
    pairs = {}
    for cand in ALL_CANDIDATES:
        model = cand.build().fit(Z, y)
        comp = ThreadPredictor(builder, pipeline, model, GRID,
                               cache_size=64).compile()
        pairs[cand.name] = (comp, compile_table(comp, axes=AXES,
                                                snap="plateau"))
    return pairs


@pytest.mark.parametrize("name", [c.name for c in ALL_CANDIDATES])
class TestPlateauEveryModel:
    def test_interpolated_answers_bitwise_equal_to_plan(self, plateau_pairs,
                                                        name):
        """Every answer a plateau table gives on randomised probes —
        exact hit or interpolated — is the plan's own answer."""
        comp, table = plateau_pairs[name]
        probes = interior_probes(300, seed=17)
        choices, resolved, interpolated = table.lookup_batch_ex(probes)
        assert (interpolated <= resolved).all()
        if not resolved.any():  # fully-demoted table: everything falls through
            return
        got = choices[resolved]
        expected = plan_choices(comp, probes[resolved])
        np.testing.assert_array_equal(got, expected)

    def test_exact_hits_are_not_interpolated(self, plateau_pairs, name):
        comp, table = plateau_pairs[name]
        points = table.lattice_points()
        choices, resolved, interpolated = table.lookup_batch_ex(points)
        assert resolved.all() and not interpolated.any()
        np.testing.assert_array_equal(choices, plan_choices(comp, points))

    def test_out_of_box_falls_through(self, plateau_pairs, name):
        _, table = plateau_pairs[name]
        outside = [(2048, 128, 90),   # m above the box
                   (64, 16, 90),      # k below the box
                   (15, 30, 6)]       # everything below the box
        _, resolved, interpolated = table.lookup_batch_ex(outside)
        assert not resolved.any() and not interpolated.any()

    def test_scalar_path_matches_batch_path(self, plateau_pairs, name):
        _, table = plateau_pairs[name]
        probes = interior_probes(60, seed=23)
        choices, resolved, interpolated = table.lookup_batch_ex(probes)
        for i, (m, k, n) in enumerate(probes):
            choice, interp = table.lookup_ex(int(m), int(k), int(n))
            if resolved[i]:
                assert choice == int(choices[i])
                assert interp == bool(interpolated[i])
            else:
                assert choice is None and not interp


class TestCornerAgreement:
    """Hand-built lattices where the plateau geometry is known exactly."""

    AXES2 = ([10, 100], [10, 100], [10, 100])

    def _table(self, grid_index, **kwargs):
        return DecisionTable("gemm", GRID, self.AXES2,
                             np.asarray(grid_index, dtype=np.int16),
                             snap="plateau", **kwargs)

    def test_agreeing_cell_answers_its_interior(self):
        table = self._table(np.zeros((2, 2, 2)))
        assert table.cell_ok.shape == (1, 1, 1) and table.cell_ok.all()
        choice, interpolated = table.lookup_ex(50, 50, 50)
        assert choice == GRID[0] and interpolated

    def test_disagreeing_corner_demotes_the_cell(self):
        grid_index = np.zeros((2, 2, 2))
        grid_index[0, 0, 0] = 3
        table = self._table(grid_index)
        assert not table.cell_ok.any()
        assert table.lookup(50, 50, 50) is None        # interior falls through
        assert table.lookup(10, 10, 10) == GRID[3]     # exact hits still answer
        assert table.lookup(100, 10, 10) == GRID[0]

    def test_explicit_mask_can_only_demote(self):
        # All corners agree, but the mask vetoes the cell...
        table = self._table(np.zeros((2, 2, 2)),
                            cell_ok=np.zeros((1, 1, 1), dtype=bool))
        assert table.lookup(50, 50, 50) is None
        # ...and a permissive mask cannot resurrect a disagreeing cell.
        grid_index = np.zeros((2, 2, 2))
        grid_index[1, 1, 1] = 2
        table = self._table(grid_index,
                            cell_ok=np.ones((1, 1, 1), dtype=bool))
        assert not table.cell_ok.any()

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="cell_ok"):
            self._table(np.zeros((2, 2, 2)),
                        cell_ok=np.ones((2, 2, 2), dtype=bool))

    def test_degenerate_axis_never_blocks_agreement(self):
        table = DecisionTable("gemv", GRID, ([10, 100], [10, 100], [1]),
                              np.zeros((2, 2, 1), dtype=np.int16),
                              snap="plateau")
        assert table.cell_ok.shape == (1, 1, 1) and table.cell_ok.all()
        choice, interpolated = table.lookup_ex(50, 50, 1)
        assert choice == GRID[0] and interpolated

    def test_non_plateau_modes_carry_no_mask(self):
        for snap in ("exact", "nearest"):
            table = DecisionTable("gemm", GRID, self.AXES2,
                                  np.zeros((2, 2, 2), dtype=np.int16),
                                  snap=snap)
            assert table.cell_ok is None


class _CarvedPredictor:
    """Corners agree; the plan changes its mind strictly inside the cell.

    Piecewise models can carve a cell without moving its corners — the
    build-time probe sweep must catch that and demote the cell instead
    of shipping a wrong interpolation.
    """

    routine = "gemm"
    thread_grid = np.asarray(GRID, dtype=np.int64)

    def predicted_runtimes_batch(self, shapes):
        corner = {10, 100}
        scores = []
        for m, k, n in shapes:
            on_corner = {m, k, n} <= corner
            scores.append([0.0, 1.0, 2.0, 3.0, 4.0, 5.0] if on_corner
                          else [1.0, 0.0, 2.0, 3.0, 4.0, 5.0])
        return np.asarray(scores)


class TestBuildTimeDemotion:
    def test_carved_cell_is_demoted_not_shipped(self):
        table = compile_table(_CarvedPredictor(),
                              axes=([10, 100], [10, 100], [10, 100]),
                              snap="plateau")
        assert table.meta["demoted_cells"] == 1
        assert table.meta["validation_probes"] > 0
        assert not table.cell_ok.any()
        assert table.lookup(50, 50, 50) is None      # would have been wrong
        assert table.lookup(10, 100, 10) == GRID[0]  # corners still exact

    def test_validation_metadata_lands_in_describe(self):
        table = compile_table(_CarvedPredictor(),
                              axes=([10, 100], [10, 100], [10, 100]),
                              snap="plateau")
        info = table.describe()
        assert info["snap"] == "plateau"
        assert info["cells"] == 1 and info["plateau_cells"] == 0
        assert info["demoted_cells"] == 1
        assert info["validation_probes"] == table.meta["validation_probes"]


class TestPlateauPersistence:
    @pytest.fixture(scope="class")
    def table(self, feature_setup, fitted_pipeline):
        builder, _, _ = feature_setup
        pipeline, Z, y = fitted_pipeline
        model = ALL_CANDIDATES[0].build().fit(Z, y)
        comp = ThreadPredictor(builder, pipeline, model, GRID,
                               cache_size=64).compile()
        return compile_table(comp, axes=AXES, snap="plateau")

    def test_pickle_roundtrip_preserves_answers(self, table):
        clone = pickle.loads(pickle.dumps(table))
        assert clone.snap == "plateau"
        np.testing.assert_array_equal(clone.cell_ok, table.cell_ok)
        probes = interior_probes(200, seed=31)
        for a, b in zip(clone.lookup_batch_ex(probes),
                        table.lookup_batch_ex(probes)):
            np.testing.assert_array_equal(a, b)

    def test_pickles_deterministically(self, table):
        """Scratch state stays out of the pickle, so bytes are stable —
        the registry's idempotence checks hang off this."""
        payload = pickle.dumps(table)
        clone = pickle.loads(payload)
        clone.lookup(33, 44, 55)  # dirty the scratch buffer
        assert pickle.dumps(clone) == payload

    def test_pre_plateau_state_backfills_mask(self, table):
        state = table.__getstate__()
        state.pop("cell_ok")
        legacy = DecisionTable.__new__(DecisionTable)
        legacy.__setstate__(state)
        np.testing.assert_array_equal(
            legacy.cell_ok, _corner_agreement(table.grid_index))
        assert legacy.lookup(*lattice_shapes(table)[0]) is not None


class TestRefineAxes:
    AXES3 = ([10, 100], [10, 100], [10, 100])

    def test_deterministic(self):
        misses = [(50, 20, 30), (50, 20, 90), (60, 20, 30)]
        first = refine_axes(self.AXES3, misses)
        second = refine_axes(self.AXES3, misses)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_most_frequent_misses_win_the_budget(self):
        misses = [(50, 10, 10)] * 3 + [(60, 10, 10)] * 2 + [(70, 10, 10)]
        out = refine_axes(self.AXES3, misses, max_new_per_axis=2)
        assert out[0].tolist() == [10, 50, 60, 100]
        np.testing.assert_array_equal(out[1], [10, 100])

    def test_frequency_ties_break_toward_smaller_value(self):
        misses = [(60, 10, 10), (50, 10, 10)] * 2
        out = refine_axes(self.AXES3, misses, max_new_per_axis=1)
        assert out[0].tolist() == [10, 50, 100]

    def test_on_lattice_misses_are_a_no_op(self):
        out = refine_axes(self.AXES3, [(10, 100, 10), (100, 10, 100)])
        for old, new in zip(self.AXES3, out):
            np.testing.assert_array_equal(new, old)

    def test_out_of_box_miss_extends_the_box(self):
        out = refine_axes(self.AXES3, [(500, 10, 10)])
        assert out[0].tolist() == [10, 100, 500]

    def test_budget_shrinks_to_respect_the_point_bound(self):
        edge = np.arange(1, 101, dtype=np.int64)
        axes = (edge, edge, edge)  # exactly MAX_LATTICE_POINTS
        assert int(np.prod([a.size for a in axes])) == MAX_LATTICE_POINTS
        out = refine_axes(axes, [(1000, 2000, 3000)])
        for old, new in zip(axes, out):
            np.testing.assert_array_equal(new, old)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_new_per_axis"):
            refine_axes(self.AXES3, [(50, 50, 50)], max_new_per_axis=-1)
        with pytest.raises(ValueError, match=">= 1"):
            refine_axes(self.AXES3, [(0, 50, 50)])

    def test_empty_misses(self):
        out = refine_axes(self.AXES3, [])
        for old, new in zip(self.AXES3, out):
            np.testing.assert_array_equal(new, old)

    def test_accepts_spec_like_objects(self):
        class Dims:
            dims = (55, 10, 10)

        out = refine_axes(self.AXES3, [Dims()])
        assert 55 in out[0].tolist()


class TestShapeReservoir:
    def test_fixed_seed_determinism(self):
        stream = [(i % 37 + 1, i % 11 + 1, i % 7 + 1) for i in range(1000)]
        a, b = ShapeReservoir(capacity=16), ShapeReservoir(capacity=16)
        for shape in stream:
            a.add(shape)
            b.add(shape)
        assert a.shapes() == b.shapes()
        assert a.seen == b.seen == 1000

    def test_bounded_memory(self):
        reservoir = ShapeReservoir(capacity=8)
        for i in range(10_000):
            reservoir.add((i + 1, 1, 1))
        assert len(reservoir) == 8 and reservoir.seen == 10_000

    def test_keeps_everything_below_capacity(self):
        reservoir = ShapeReservoir(capacity=64)
        offered = [(i + 1, 2, 3) for i in range(10)]
        for shape in offered:
            reservoir.add(shape)
        assert reservoir.shapes() == offered

    def test_sample_is_a_subset_of_the_stream(self):
        reservoir = ShapeReservoir(capacity=4)
        offered = {(i + 1, 5, 5) for i in range(200)}
        for shape in sorted(offered):
            reservoir.add(shape)
        assert set(reservoir.shapes()) <= offered

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ShapeReservoir(capacity=0)

    def test_predictor_records_fallbacks(self, feature_setup,
                                         fitted_pipeline):
        builder, _, _ = feature_setup
        pipeline, Z, y = fitted_pipeline
        model = ALL_CANDIDATES[0].build().fit(Z, y)
        comp = ThreadPredictor(builder, pipeline, model, GRID,
                               cache_size=64).compile()
        table = compile_table(comp, axes=AXES)  # snap=exact: misses abound
        tab = ThreadPredictor(builder, pipeline, model, GRID, cache_size=64,
                              plan=comp.plan, table=table)
        misses = off_lattice_shapes(7, seed=5)
        tab.predict_threads_batch(misses)
        m, k, n = misses[0]
        tab.predict_threads(m, k, n)  # cached: must not re-record
        assert tab.fallback_shapes.seen == len(set(misses))
        assert set(tab.fallback_shapes.shapes()) == set(misses)


class TestRegistryRefine:
    MISSES = [(333, 77, 41)] * 3 + [(219, 77, 41)] * 2 + [(333, 135, 260)]

    @pytest.fixture()
    def tabled_registry(self, tiny_bundle, tmp_path):
        bundle, _ = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(bundle, routine="gemm")
        registry.compile_table("gemm", "tiny", resolution=6, snap="plateau")
        return registry

    def test_refine_publishes_next_generation(self, tabled_registry):
        registry = tabled_registry
        info = registry.refine_table("gemm", "tiny", shapes=self.MISSES)
        assert not info.get("up_to_date")
        assert info["version"] == 3 and info["refined_from_version"] == 2
        assert info["generation"] == 1
        assert info["n_miss_shapes"] == len(self.MISSES)

        table = registry.load("gemm", "tiny").table
        assert table.snap == "plateau"  # snap mode survives refinement
        assert table.meta["source"] == "refined"
        assert table.meta["generation"] == 1
        assert table.meta["refined_from_version"] == 2
        for axis, col in zip(table.axes, np.asarray(self.MISSES).T):
            assert np.isin(col, axis).all()  # misses are lattice ticks now
        # The pre-refinement version is immutable and still resolvable.
        assert registry.resolve("gemm", "tiny", version=2).version == 2

    def test_refine_is_idempotent_on_stable_traffic(self, tabled_registry):
        registry = tabled_registry
        registry.refine_table("gemm", "tiny", shapes=self.MISSES)
        n_versions = len(registry.entries())
        info = registry.refine_table("gemm", "tiny", shapes=self.MISSES)
        assert info["up_to_date"] and info["generation"] == 1
        assert len(registry.entries()) == n_versions  # no version minted

    def test_generations_accumulate(self, tabled_registry):
        registry = tabled_registry
        registry.refine_table("gemm", "tiny", shapes=self.MISSES)
        info = registry.refine_table("gemm", "tiny",
                                     shapes=[(477, 91, 310)])
        assert info["generation"] == 2
        table = registry.load("gemm", "tiny").table
        assert table.meta["generation"] == 2
        assert table.meta["refined_from_version"] == 3

    def test_refined_lattice_serves_the_recorded_misses(self,
                                                        tabled_registry):
        registry = tabled_registry
        registry.refine_table("gemm", "tiny", shapes=self.MISSES)
        predictor = registry.load("gemm", "tiny").predictor(cache_size=64)
        before = predictor.n_model_passes
        predictor.predict_threads_batch(sorted(set(self.MISSES)))
        assert predictor.n_table_fallbacks == 0  # former misses now tier-0
        assert predictor.n_model_passes == before

    def test_refine_without_table_raises(self, tiny_bundle, tmp_path):
        bundle, _ = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(bundle, routine="gemm")
        with pytest.raises(RegistryError, match="no decision table"):
            registry.refine_table("gemm", "tiny", shapes=self.MISSES)
