"""Decision tables: lattice parity, fall-through, persistence, serving.

The acceptance property of the tier-0 layer: for **every** registered
model, the table's answers on lattice points are bitwise equal to the
compiled plan's and the object path's — with zero model passes — and
every shape off the lattice falls through to the plan unchanged.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.compile import (DecisionTable, TableValidationError,
                           campaign_axes, compile_table)
from repro.core.predictor import ThreadPredictor
from repro.core.routines import REGISTRY
from repro.core.serialize import (MANIFEST_FILENAME, TABLE_FILENAME,
                                  bundle_checksum, load_bundle, save_bundle)
from repro.engine.service import GemmService
from repro.ml.registry import candidate_models
from repro.train.registry import ModelRegistry

from tests.compile.conftest import GRID, random_query_shapes
from tests.compile.test_persistence import make_legacy

ALL_CANDIDATES = candidate_models(budget="fast", include_extra=True,
                                  random_state=0)

#: A small explicit lattice; values chosen so midpoints and
#: off-lattice probes are unambiguous.
AXES = ([16, 64, 256, 1024], [31, 128, 512], [7, 90, 900])


def lattice_shapes(table) -> list:
    return [tuple(int(v) for v in p) for p in table.lattice_points()]


def off_lattice_shapes(n: int, seed: int = 0) -> list:
    """Shapes guaranteed off AXES (every coordinate is even-ish large)."""
    shapes = []
    on = {v for axis in AXES for v in axis}
    for m, k, n_dim in random_query_shapes(3 * n, seed=seed):
        if not ({m, k, n_dim} & on):
            shapes.append((m, k, n_dim))
        if len(shapes) == n:
            break
    return shapes


@pytest.fixture(scope="module")
def predictor_trios(feature_setup, fitted_pipeline):
    """(object, compiled, tabled) ThreadPredictor per candidate model."""
    builder, _, _ = feature_setup
    pipeline, Z, y = fitted_pipeline
    trios = {}
    for cand in ALL_CANDIDATES:
        model = cand.build().fit(Z, y)
        obj = ThreadPredictor(builder, pipeline, model, GRID, cache_size=64)
        comp = ThreadPredictor(builder, pipeline, model, GRID,
                               cache_size=64).compile()
        table = compile_table(comp, axes=AXES)
        tab = ThreadPredictor(builder, pipeline, model, GRID, cache_size=64,
                              plan=comp.plan, table=table)
        trios[cand.name] = (obj, comp, tab)
    return trios


@pytest.mark.parametrize("name", [c.name for c in ALL_CANDIDATES])
class TestEveryModel:
    def test_lattice_choices_bitwise_equal_with_zero_model_passes(
            self, predictor_trios, name):
        obj, comp, tab = predictor_trios[name]
        shapes = lattice_shapes(tab.table)
        for p in (obj, comp, tab):
            p.invalidate_memo()
        expected = obj.predict_threads_batch(shapes)
        np.testing.assert_array_equal(comp.predict_threads_batch(shapes),
                                      expected)
        passes_before = tab.n_model_passes
        np.testing.assert_array_equal(tab.predict_threads_batch(shapes),
                                      expected)
        assert tab.n_model_passes == passes_before  # pure tier-0 traffic
        assert tab.n_table_hits >= len(shapes)

    def test_scalar_path_matches_batch_path(self, predictor_trios, name):
        obj, _, tab = predictor_trios[name]
        for m, k, n in lattice_shapes(tab.table)[::7]:
            assert tab.predict_threads(m, k, n) \
                == obj.predict_threads(m, k, n)

    def test_off_lattice_falls_through_to_plan(self, predictor_trios, name):
        obj, _, tab = predictor_trios[name]
        shapes = off_lattice_shapes(9, seed=3)
        tab.invalidate_memo()
        obj.invalidate_memo()
        fallbacks_before = tab.n_table_fallbacks
        passes_before = tab.n_model_passes
        np.testing.assert_array_equal(tab.predict_threads_batch(shapes),
                                      obj.predict_threads_batch(shapes))
        assert tab.n_table_fallbacks == fallbacks_before + len(set(shapes))
        assert tab.n_model_passes == passes_before + 1  # one pass for all

    def test_mixed_batch_splits_between_tiers(self, predictor_trios, name):
        obj, _, tab = predictor_trios[name]
        on = lattice_shapes(tab.table)[:6]
        off = off_lattice_shapes(5, seed=11)
        mixed = [s for pair in zip(on, off + [off[0]]) for s in pair]
        tab.invalidate_memo()
        obj.invalidate_memo()
        hits_before, falls_before = tab.n_table_hits, tab.n_table_fallbacks
        np.testing.assert_array_equal(tab.predict_threads_batch(mixed),
                                      obj.predict_threads_batch(mixed))
        assert tab.n_table_hits == hits_before + len(on)
        assert tab.n_table_fallbacks == falls_before + len(set(off))


class TestEveryRoutine:
    @pytest.mark.parametrize("routine", sorted(REGISTRY.names()))
    def test_lattice_parity_per_routine(self, feature_setup, fitted_pipeline,
                                        routine):
        builder, _, _ = feature_setup
        pipeline, Z, y = fitted_pipeline
        model = ALL_CANDIDATES[0].build().fit(Z, y)
        comp = ThreadPredictor(builder, pipeline, model, GRID, cache_size=64,
                               routine=routine).compile()
        table = compile_table(comp, axes=AXES)
        assert table.routine == routine
        tab = ThreadPredictor(builder, pipeline, model, GRID, cache_size=64,
                              plan=comp.plan, table=table, routine=routine)
        shapes = lattice_shapes(table)
        comp.invalidate_memo()
        np.testing.assert_array_equal(tab.predict_threads_batch(shapes),
                                      comp.predict_threads_batch(shapes))
        assert tab.n_model_passes == 0

    @pytest.mark.parametrize("routine", ["gemv", "syrk", "trsm"])
    def test_campaign_axes_follow_routine_dims(self, tiny_bundle, routine):
        bundle, _ = tiny_bundle
        axes, probe = campaign_axes(bundle.config, routine=routine,
                                    resolution=8, n_probe=64)
        assert len(axes) == 3 and probe.shape == (64, 3)
        for axis in axes:
            assert 1 <= axis.size <= 8
            assert (np.diff(axis) > 0).all()
        if routine == "gemv":  # trailing dim is constant 1
            assert axes[2].tolist() == [1]
        if routine == "trsm":  # k is tied to m
            assert axes[0].tolist() == axes[1].tolist()

    def test_routine_mismatch_raises(self, feature_setup, fitted_pipeline):
        builder, _, _ = feature_setup
        pipeline, Z, y = fitted_pipeline
        model = ALL_CANDIDATES[0].build().fit(Z, y)
        comp = ThreadPredictor(builder, pipeline, model, GRID,
                               routine="gemv").compile()
        table = compile_table(comp, axes=AXES)
        with pytest.raises(ValueError, match="routine"):
            ThreadPredictor(builder, pipeline, model, GRID, table=table,
                            routine="gemm")

    def test_grid_mismatch_raises(self, feature_setup, fitted_pipeline):
        builder, _, _ = feature_setup
        pipeline, Z, y = fitted_pipeline
        model = ALL_CANDIDATES[0].build().fit(Z, y)
        comp = ThreadPredictor(builder, pipeline, model, GRID).compile()
        table = compile_table(comp, axes=AXES)
        with pytest.raises(ValueError, match="recompile the table"):
            ThreadPredictor(builder, pipeline, model, GRID[:-1], table=table)


class TestDegenerateLattices:
    @pytest.fixture(scope="class")
    def compiled(self, feature_setup, fitted_pipeline):
        builder, _, _ = feature_setup
        pipeline, Z, y = fitted_pipeline
        model = ALL_CANDIDATES[0].build().fit(Z, y)
        return ThreadPredictor(builder, pipeline, model, GRID,
                               cache_size=64).compile()

    def test_single_point_lattice(self, compiled):
        table = compile_table(compiled, axes=([64], [128], [256]))
        assert table.lattice_shape == (1, 1, 1) and table.n_points == 1
        compiled.invalidate_memo()
        assert table.lookup(64, 128, 256) \
            == compiled.predict_threads(64, 128, 256)
        assert table.lookup(65, 128, 256) is None

    def test_empty_batch(self, compiled):
        table = compile_table(compiled, axes=AXES)
        choices, resolved = table.lookup_batch([])
        assert choices.dtype == np.int64 and choices.size == 0
        assert resolved.dtype == bool and resolved.size == 0
        tab = ThreadPredictor(compiled.feature_builder, compiled.pipeline,
                              compiled.model, GRID, plan=compiled.plan,
                              table=table)
        out = tab.predict_threads_batch([])
        assert out.dtype == np.int64 and out.size == 0

    def test_exact_snap_rejects_near_misses(self, compiled):
        table = compile_table(compiled, axes=AXES, snap="exact")
        assert table.lookup(16, 31, 7) is not None
        assert table.lookup(17, 31, 7) is None
        assert table.lookup(16, 31, 8) is None

    def test_nearest_snap_resolves_in_box_only(self, compiled):
        table = compile_table(compiled, axes=AXES, snap="nearest")
        # In the bounding box each axis snaps independently: m=40 is
        # equidistant from 16 and 64 (tie -> larger), k=79 and n=48 sit
        # just below their midpoints, k=80 and n=49 just above.
        assert table.lookup(40, 79, 48) == table.lookup(64, 31, 7)
        assert table.lookup(39, 80, 49) == table.lookup(16, 128, 90)
        # Outside the box: still falls through.
        assert table.lookup(15, 31, 7) is None
        assert table.lookup(2000, 31, 7) is None

    def test_nearest_snap_is_exact_on_lattice_points(self, compiled):
        exact = compile_table(compiled, axes=AXES, snap="exact")
        nearest = compile_table(compiled, axes=AXES, snap="nearest")
        points = lattice_shapes(exact)
        got_e, ok_e = exact.lookup_batch(points)
        got_n, ok_n = nearest.lookup_batch(points)
        assert ok_e.all() and ok_n.all()
        np.testing.assert_array_equal(got_e, got_n)

    def test_invalid_snap_rejected(self, compiled):
        with pytest.raises(ValueError, match="snap"):
            compile_table(compiled, axes=AXES, snap="fuzzy")

    def test_oversized_lattice_rejected(self, compiled):
        big = np.arange(1, 102)
        with pytest.raises(ValueError, match="point bound"):
            compile_table(compiled, axes=(big, big, big))

    def test_axes_validated(self, compiled):
        with pytest.raises(ValueError, match="non-empty"):
            compile_table(compiled, axes=([], [1], [2]))
        with pytest.raises(ValueError, match=">= 1"):
            compile_table(compiled, axes=([0, 4], [1], [2]))
        with pytest.raises(ValueError, match="three"):
            compile_table(compiled, axes=([1], [2]))

    def test_needs_axes_or_config(self, compiled):
        with pytest.raises(ValueError, match="axes or a config"):
            compile_table(compiled)

    def test_tampered_table_is_detectable(self, compiled):
        table = compile_table(compiled, axes=AXES)
        # A flipped packed entry must change an answer — the condition
        # the build-time validation loop checks for.
        corrupt = table.grid_index.copy()
        corrupt[0, 0, 0] = (corrupt[0, 0, 0] + 1) % len(table.thread_grid)
        bad = DecisionTable(table.routine, table.thread_grid, table.axes,
                            corrupt, snap=table.snap)
        got, ok = bad.lookup_batch(lattice_shapes(table))
        expected, _ = table.lookup_batch(lattice_shapes(table))
        assert ok.all() and (got != expected).any()

    def test_build_validation_rejects_diverging_lookup(self, compiled,
                                                       monkeypatch):
        """A table whose lookup disagrees with the plan never ships."""
        import repro.compile.table as table_mod

        real = table_mod.DecisionTable.lookup_batch

        def lying(self, shapes):
            choices, resolved = real(self, shapes)
            return np.zeros_like(choices), resolved

        monkeypatch.setattr(table_mod.DecisionTable, "lookup_batch", lying)
        with pytest.raises(TableValidationError, match="diverges"):
            compile_table(compiled, axes=AXES)


class TestPersistence:
    @pytest.fixture()
    def table_saved(self, tiny_bundle, tmp_path):
        """An independent copy of the tiny bundle, table compiled."""
        bundle, sim = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        bundle.compile_table(resolution=6)
        directory = tmp_path / "install"
        manifest = save_bundle(bundle, directory)
        return bundle, sim, directory, manifest

    def test_save_is_opt_in(self, tiny_bundle, tmp_path):
        """A bundle without a compiled table writes no table artefact."""
        bundle, _ = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        manifest = save_bundle(bundle, tmp_path / "plain")
        assert not (tmp_path / "plain" / TABLE_FILENAME).exists()
        assert TABLE_FILENAME not in manifest["files"]
        assert "table" not in manifest
        assert load_bundle(tmp_path / "plain").table is None

    def test_table_artifact_written_and_described(self, table_saved):
        bundle, _, directory, manifest = table_saved
        assert (directory / TABLE_FILENAME).exists()
        assert TABLE_FILENAME in manifest["files"]
        assert manifest["table"] == bundle.table.describe()
        assert manifest["checksum"] == bundle_checksum(directory)

    def test_loaded_table_serves_lattice_without_model_passes(
            self, table_saved):
        bundle, _, directory, _ = table_saved
        loaded = load_bundle(directory)
        assert loaded.table is not None
        predictor = loaded.predictor(cache_size=256)
        assert predictor.tabled and predictor.compiled
        shapes = lattice_shapes(loaded.table)
        reference = bundle.predictor(cache_size=256, compiled=False,
                                     table=False)
        np.testing.assert_array_equal(
            predictor.predict_threads_batch(shapes),
            reference.predict_threads_batch(shapes))
        assert predictor.n_model_passes == 0

    def test_table_pickle_is_deterministic(self, table_saved, tmp_path):
        bundle, _, directory, _ = table_saved
        save_bundle(bundle, tmp_path / "again")
        assert (directory / TABLE_FILENAME).read_bytes() \
            == (tmp_path / "again" / TABLE_FILENAME).read_bytes()

    def test_schema2_bundle_without_table_loads(self, table_saved):
        """Pre-table (schema <= 2) bundles keep loading and serving."""
        bundle, _, directory, _ = table_saved
        os.remove(directory / TABLE_FILENAME)
        manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
        manifest["schema_version"] = 2
        del manifest["files"][TABLE_FILENAME]
        del manifest["table"]
        manifest["checksum"] = bundle_checksum(directory)
        (directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        loaded = load_bundle(directory)
        assert loaded.table is None and loaded.plan is not None
        predictor = loaded.predictor()
        assert not predictor.tabled
        m, k, n = lattice_shapes(bundle.table)[0]
        assert predictor.predict_threads(m, k, n) \
            == bundle.predictor(table=False).predict_threads(m, k, n)

    def test_unmanifested_table_is_refused(self, table_saved):
        from repro.core.serialize import BundleIntegrityError

        bundle, _, directory, _ = table_saved
        make_legacy(directory)  # schema-1 manifest (plan artefact gone)
        # Drop the table from the manifest but leave the pickle on disk:
        # exactly what a file dropped into the directory afterwards
        # looks like — an artefact no checksum protects.
        manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
        del manifest["files"][TABLE_FILENAME]
        del manifest["table"]
        manifest["checksum"] = bundle_checksum(directory)
        (directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(BundleIntegrityError, match="not recorded"):
            load_bundle(directory)
        assert load_bundle(directory, load_table=False).table is None

    def test_corrupt_table_fails_loudly(self, table_saved):
        from repro.core.serialize import (BundleIntegrityError, _sha256_file,
                                          bundle_checksum)

        _, _, directory, _ = table_saved
        (directory / TABLE_FILENAME).write_bytes(b"\x80\x04 garbage")
        manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
        manifest["files"][TABLE_FILENAME] = _sha256_file(
            os.path.join(directory, TABLE_FILENAME))
        manifest["checksum"] = bundle_checksum(directory)
        (directory / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(BundleIntegrityError, match="table"):
            load_bundle(directory)
        # Recovery path: skip the table, keep everything else.
        assert load_bundle(directory, load_table=False).plan is not None


class TestRegistryTables:
    def test_compile_table_retrofits_published_bundle(self, tiny_bundle,
                                                      tmp_path):
        bundle, _ = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(bundle, routine="gemm")
        assert not registry.has_table(registry.resolve("gemm", "tiny"))

        info = registry.compile_table("gemm", "tiny", resolution=6)
        assert (info["version"], info["table_from_version"]) == (2, 1)
        assert info["table"]["lattice_shape"]
        assert registry.has_table(registry.resolve("gemm", "tiny"))
        assert not registry.has_table(registry.resolve("gemm", "tiny",
                                                       version=1))
        assert registry.inspect("gemm", "tiny")["has_table"]

        loaded = registry.load("gemm", "tiny")
        assert loaded.table is not None
        shapes = lattice_shapes(loaded.table)
        predictor = loaded.predictor(cache_size=256)
        reference = bundle.predictor(cache_size=256, compiled=False,
                                     table=False)
        np.testing.assert_array_equal(
            predictor.predict_threads_batch(shapes),
            reference.predict_threads_batch(shapes))
        assert predictor.n_model_passes == 0

    def test_recompile_is_idempotent(self, tiny_bundle, tmp_path):
        bundle, _ = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(bundle, routine="gemm")
        registry.compile_table("gemm", "tiny", resolution=6)
        info = registry.compile_table("gemm", "tiny", resolution=6)
        assert info["up_to_date"] and info["version"] == 2
        assert len(registry.entries()) == 2  # no duplicate version minted

    def test_compile_table_recovers_corrupt_artifact(self, tiny_bundle,
                                                     tmp_path):
        bundle, _ = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(bundle, routine="gemm")
        registry.compile_table("gemm", "tiny", resolution=6)
        record = registry.resolve("gemm", "tiny")
        with open(os.path.join(record.path, TABLE_FILENAME), "wb") as fh:
            fh.write(b"\x80\x04 garbage")
        info = registry.compile_table("gemm", "tiny", resolution=6)
        assert info["version"] == 3
        assert registry.load("gemm", "tiny").table is not None


class TestServiceIntegration:
    @pytest.fixture()
    def table_service(self, tiny_bundle):
        bundle, sim = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        bundle.compile_table(resolution=6)
        service = GemmService.from_bundle(bundle, sim, cache_size=256)
        return bundle, sim, service

    def test_from_bundle_serves_through_the_table(self, table_service):
        bundle, sim, service = table_service
        assert service.predictor.tabled
        shapes = lattice_shapes(bundle.table)[:10]
        reference = GemmService(bundle.predictor(cache_size=256,
                                                 compiled=False, table=False),
                                backend=sim)
        np.testing.assert_array_equal(service.predict_batch(shapes),
                                      reference.predict_batch(shapes))
        assert service.predictor.n_model_passes == 0

    def test_stats_expose_fallback_counters(self, table_service):
        bundle, _, service = table_service
        on = lattice_shapes(bundle.table)[:4]
        off = off_lattice_shapes(3, seed=21)
        service.predict_batch(on + off)
        stats = service.stats()
        assert stats["table_hits"] == len(on)
        assert stats["table_fallbacks"] == len(off)
        assert stats["routines"]["gemm"]["table_hits"] == len(on)
        assert stats["routines"]["gemm"]["table_fallbacks"] == len(off)

    def test_tableless_service_keeps_historic_stats_shape(self, tiny_bundle):
        bundle, sim = tiny_bundle
        bundle = dataclasses.replace(bundle, table=None)
        service = GemmService.from_bundle(bundle, sim)
        service.predict_batch([(64, 512, 64)])
        stats = service.stats()
        assert "table_hits" not in stats
        assert "table_hits" not in stats["routines"]["gemm"]

    def test_reload_folds_counters_into_retired(self, table_service):
        bundle, _, service = table_service
        on = lattice_shapes(bundle.table)[:5]
        service.predict_batch(on)
        service.reload(bundle)
        service.predict_batch(lattice_shapes(bundle.table)[5:8])
        assert service.stats()["table_hits"] == 8  # retired + live

    def test_server_telemetry_records_table_traffic(self, table_service):
        from repro.gemm.interface import GemmSpec
        from repro.serve import GemmServer, poisson_trace, replay_trace

        bundle, _, service = table_service
        shapes = lattice_shapes(bundle.table)[:12]
        pool = [GemmSpec(m, k, n) for m, k, n in shapes]
        trace = poisson_trace(pool, rate_hz=5000.0, n_requests=24, seed=0)
        server = GemmServer(service, max_batch=8, max_wait_ms=2.0)
        outcome = replay_trace(server, trace)
        assert outcome.served == 24
        stats = server.telemetry.stats()
        assert stats["table_hits"] == len(shapes)  # one per unique shape
        assert stats["routines"]["gemm"]["table_hits"] == len(shapes)

    def test_telemetry_record_table_unit(self):
        from repro.serve.telemetry import ServeTelemetry

        telemetry = ServeTelemetry()
        assert "table_hits" not in telemetry.stats()
        telemetry.record_table("gemm", hits=3, fallbacks=1)
        telemetry.record_table("gemv", hits=2, fallbacks=0)
        stats = telemetry.stats()
        assert stats["table_hits"] == 5 and stats["table_fallbacks"] == 1
        assert telemetry.routine_stats()["gemm"]["table_hits"] == 3
        assert telemetry.routine_stats()["gemv"]["table_fallbacks"] == 0
