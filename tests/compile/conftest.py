"""Shared fixtures for the compiled-plan suite.

A realistic-but-tiny setting: Table II features over random GEMM shapes
and a synthetic runtime-like label, the real preprocessing stages fitted
exactly as :meth:`InstallationWorkflow.preprocess` assembles them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import FeatureBuilder
from repro.preprocessing.correlation import CorrelationPruner
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.standard import StandardScaler
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer

GRID = [1, 2, 4, 8, 12, 16]


def fit_stages(X, use_yeo_johnson: bool = True):
    """Fit the inference-side stages the way the training workflow does."""
    stages = []
    data = X
    if use_yeo_johnson:
        yj = YeoJohnsonTransformer()
        data = yj.fit_transform(data)
        stages.append(("yeo_johnson", yj))
    scaler = StandardScaler()
    data = scaler.fit_transform(data)
    stages.append(("scaler", scaler))
    pruner = CorrelationPruner()
    data = pruner.fit_transform(data)
    stages.append(("corr_prune", pruner))
    return Pipeline.from_fitted(stages), data


@pytest.fixture(scope="module")
def feature_setup():
    """(builder, raw features X, label y) over random shapes x GRID."""
    rng = np.random.default_rng(7)
    builder = FeatureBuilder("both")
    shapes = rng.integers(16, 3000, (60, 3))
    X = builder.build_for_batch(shapes, GRID)
    y = np.log(X[:, 7] / X[:, 3] + X[:, 16] + rng.random(X.shape[0]))
    return builder, X, y


@pytest.fixture(scope="module")
def fitted_pipeline(feature_setup):
    """(pipeline, transformed Z, y) with the full three-stage pipeline."""
    _, X, y = feature_setup
    pipeline, Z = fit_stages(X)
    return pipeline, Z, y


def random_query_shapes(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return [tuple(int(v) for v in row)
            for row in rng.integers(16, 3000, (n, 3))]
